//! Sharded experiment runs with deterministic merge.
//!
//! A dataset-level experiment is decomposed into independent *items*
//! (dataset kinds for the Table III statistics, dev examples for
//! distillation runs). One shard executes a contiguous item range
//! ([`ShardSpec::range`]) and serializes its table rows and per-item
//! metrics as a [`ShardOutput`] (plain JSON); [`merge`] validates that
//! a set of shard outputs covers the run exactly — same experiment,
//! seed, scale, header, shard count, every shard present once, item
//! indices disjoint and in-range — and reassembles them into a
//! [`MergedRun`] whose rendering is **bit-identical to the
//! single-process run** for any shard count and any completion order.
//!
//! Identity holds because (a) every item's cells/metrics are computed
//! by a deterministic function of the shared artifacts (seeded dataset
//! generation, seeded fit) that every shard reconstructs identically,
//! and (b) the merge orders rows by global item index, erasing
//! scheduling. The property tests in `tests/shard_properties.rs` pin
//! both halves down.

use crate::experiments::ExperimentContext;
use crate::scale::Scale;
use crate::tables::TextTable;
use gced_datasets::json::{self, Json};
use gced_datasets::{generate, DatasetKind, GeneratorConfig, ShardSpec};

/// On-disk format version of [`ShardOutput`].
const FORMAT_VERSION: u32 = 1;

/// Errors from shard execution, decoding, or merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// Unknown experiment name.
    UnknownExperiment(String),
    /// Invalid shard spec or arguments.
    Spec(String),
    /// Malformed shard output JSON.
    Format(String),
    /// Shard outputs that do not assemble into one run.
    Merge(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::UnknownExperiment(n) => {
                write!(
                    f,
                    "unknown experiment {n:?} (expected one of {EXPERIMENTS:?})"
                )
            }
            ShardError::Spec(m) => write!(f, "shard spec error: {m}"),
            ShardError::Format(m) => write!(f, "shard format error: {m}"),
            ShardError::Merge(m) => write!(f, "shard merge error: {m}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// One table row produced by a shard, tagged with its global item index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRow {
    /// Global item index in `0..n_items`.
    pub item: usize,
    /// Rendered cells (one per header column).
    pub cells: Vec<String>,
}

/// One per-item metric sample produced by a shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMetric {
    /// Global item index in `0..n_items`.
    pub item: usize,
    /// Metric name (e.g. `word_reduction`).
    pub name: String,
    /// Finite sample value.
    pub value: f64,
}

/// The serializable result of one shard of an experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutput {
    /// Experiment name (see [`EXPERIMENTS`]).
    pub experiment: String,
    /// Dataset kind the experiment ran on.
    pub kind: DatasetKind,
    /// The run's base seed (shared by every shard).
    pub seed: u64,
    /// Scale fingerprint (`train…-dev…-rated…`).
    pub scale_tag: String,
    /// Which shard this is.
    pub shard: ShardSpec,
    /// Total number of items in the full run.
    pub n_items: usize,
    /// Table header (identical across shards).
    pub header: Vec<String>,
    /// Rows for this shard's items, in item order.
    pub rows: Vec<ShardRow>,
    /// Metric samples for this shard's items, in item order.
    pub metrics: Vec<ShardMetric>,
}

/// Scale fingerprint recorded in shard outputs and validated at merge.
pub fn scale_tag(scale: Scale) -> String {
    format!("train{}-dev{}-rated{}", scale.train, scale.dev, scale.rated)
}

// ---------------------------------------------------------------------------
// Experiments
// ---------------------------------------------------------------------------

/// Shardable experiments, by name:
///
/// * `table3` — dataset statistics (Table III); items are the four
///   dataset kinds, `kind` is ignored.
/// * `reduction` — ground-truth evidence distillation over the dev
///   split of `kind` (the Sec. IV-D1 word-reduction statistic); items
///   are dev examples, and each shard prepares only its slice of the
///   dev [`ExperimentContext`] cache via
///   [`ExperimentContext::prepare_with`].
pub const EXPERIMENTS: &[&str] = &["table3", "reduction"];

/// Run one shard of a named experiment.
pub fn run_shard(
    experiment: &str,
    kind: DatasetKind,
    scale: Scale,
    seed: u64,
    shard: ShardSpec,
) -> Result<ShardOutput, ShardError> {
    match experiment {
        "table3" => Ok(run_table3_shard(scale, seed, shard)),
        "reduction" => Ok(run_reduction_shard(kind, scale, seed, shard)),
        other => Err(ShardError::UnknownExperiment(other.to_string())),
    }
}

fn run_table3_shard(scale: Scale, seed: u64, shard: ShardSpec) -> ShardOutput {
    let kinds = DatasetKind::all();
    let header = vec![
        "Dataset".to_string(),
        "Paper Train".to_string(),
        "Paper Dev".to_string(),
        "Gen Train".to_string(),
        "Gen Dev".to_string(),
        "Ctx words".to_string(),
        "Answerable".to_string(),
    ];
    let mut rows = Vec::new();
    let mut metrics = Vec::new();
    for item in shard.range(kinds.len()) {
        let kind = kinds[item];
        let (pt, pd) = kind.paper_sizes();
        let ds = generate(
            kind,
            GeneratorConfig {
                train: scale.train,
                dev: scale.dev,
                seed,
            },
        );
        let answerable = ds
            .train
            .examples
            .iter()
            .chain(&ds.dev.examples)
            .filter(|e| e.answerable)
            .count() as f64
            / (ds.train.len() + ds.dev.len()) as f64;
        let ctx_words = ds.mean_context_words();
        rows.push(ShardRow {
            item,
            cells: vec![
                kind.name().to_string(),
                pt.to_string(),
                pd.to_string(),
                ds.train.len().to_string(),
                ds.dev.len().to_string(),
                format!("{ctx_words:.0}"),
                format!("{:.0}%", answerable * 100.0),
            ],
        });
        metrics.push(ShardMetric {
            item,
            name: "ctx_words".to_string(),
            value: ctx_words,
        });
        metrics.push(ShardMetric {
            item,
            name: "answerable".to_string(),
            value: answerable,
        });
    }
    ShardOutput {
        experiment: "table3".to_string(),
        kind: DatasetKind::Squad11,
        seed,
        scale_tag: scale_tag(scale),
        shard,
        n_items: kinds.len(),
        header,
        rows,
        metrics,
    }
}

fn run_reduction_shard(
    kind: DatasetKind,
    scale: Scale,
    seed: u64,
    shard: ShardSpec,
) -> ShardOutput {
    // Dev-only: the train gt cache is never read here, so skip it.
    let ctx = ExperimentContext::prepare_with(kind, scale, seed, None, Some(shard));
    let n_items = ctx.dataset.dev.len();
    let header = vec![
        "Example".to_string(),
        "Evidence tokens".to_string(),
        "Reduction".to_string(),
    ];
    let mut rows = Vec::new();
    let mut metrics = Vec::new();
    for item in shard.range(n_items) {
        let ex = &ctx.dataset.dev.examples[item];
        // Unanswerable / failed examples produce no row, so shards may
        // contribute fewer rows than items — the merge allows that.
        if let Some(d) = &ctx.gt_dev[item] {
            rows.push(ShardRow {
                item,
                cells: vec![
                    ex.id.clone(),
                    d.evidence_tokens.len().to_string(),
                    format!("{:.1}%", d.word_reduction * 100.0),
                ],
            });
            metrics.push(ShardMetric {
                item,
                name: "word_reduction".to_string(),
                value: d.word_reduction,
            });
        }
    }
    ShardOutput {
        experiment: "reduction".to_string(),
        kind,
        seed,
        scale_tag: scale_tag(scale),
        shard,
        n_items,
        header,
        rows,
        metrics,
    }
}

// ---------------------------------------------------------------------------
// JSON codec
// ---------------------------------------------------------------------------

impl ShardOutput {
    /// Serialize as plain JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"format\":");
        out.push_str(&FORMAT_VERSION.to_string());
        out.push_str(",\"experiment\":");
        json::push_string(&mut out, &self.experiment);
        out.push_str(",\"kind\":");
        json::push_string(&mut out, self.kind.name());
        // The seed travels as a string: it is a full-range u64, and the
        // JSON number path would round it through f64 above 2^53.
        out.push_str(",\"seed\":");
        json::push_string(&mut out, &self.seed.to_string());
        out.push_str(",\"scale\":");
        json::push_string(&mut out, &self.scale_tag);
        out.push_str(",\"shard_index\":");
        out.push_str(&self.shard.index.to_string());
        out.push_str(",\"shard_of\":");
        out.push_str(&self.shard.of.to_string());
        out.push_str(",\"n_items\":");
        out.push_str(&self.n_items.to_string());
        out.push_str(",\"header\":[");
        for (i, h) in self.header.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_string(&mut out, h);
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"item\":");
            out.push_str(&row.item.to_string());
            out.push_str(",\"cells\":[");
            for (j, c) in row.cells.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json::push_string(&mut out, c);
            }
            out.push_str("]}");
        }
        out.push_str("],\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"item\":");
            out.push_str(&m.item.to_string());
            out.push_str(",\"name\":");
            json::push_string(&mut out, &m.name);
            out.push_str(",\"value\":");
            json::push_f64(&mut out, m.value);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Parse a [`ShardOutput::to_json`] document.
    pub fn from_json(text: &str) -> Result<Self, ShardError> {
        let root = json::parse(text).map_err(|e| ShardError::Format(e.to_string()))?;
        let num = |key: &str| -> Result<f64, ShardError> {
            root.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| ShardError::Format(format!("missing numeric field {key:?}")))
        };
        let string = |key: &str| -> Result<String, ShardError> {
            root.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ShardError::Format(format!("missing string field {key:?}")))
        };
        let format = num("format")? as u32;
        if format != FORMAT_VERSION {
            return Err(ShardError::Format(format!(
                "unsupported shard format {format} (expected {FORMAT_VERSION})"
            )));
        }
        let kind_name = string("kind")?;
        let kind = DatasetKind::from_name(&kind_name)
            .ok_or_else(|| ShardError::Format(format!("unknown dataset kind {kind_name:?}")))?;
        let shard = ShardSpec::new(num("shard_index")? as usize, num("shard_of")? as usize)
            .map_err(ShardError::Spec)?;
        let header = root
            .get("header")
            .and_then(Json::as_arr)
            .ok_or_else(|| ShardError::Format("missing header".to_string()))?
            .iter()
            .map(|h| {
                h.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| ShardError::Format("non-string header cell".to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let rows = root
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| ShardError::Format("missing rows".to_string()))?
            .iter()
            .map(|r| {
                let item = r
                    .get("item")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ShardError::Format("row missing item".to_string()))?
                    as usize;
                let cells = r
                    .get("cells")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ShardError::Format("row missing cells".to_string()))?
                    .iter()
                    .map(|c| {
                        c.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| ShardError::Format("non-string cell".to_string()))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(ShardRow { item, cells })
            })
            .collect::<Result<Vec<_>, ShardError>>()?;
        let metrics = root
            .get("metrics")
            .and_then(Json::as_arr)
            .ok_or_else(|| ShardError::Format("missing metrics".to_string()))?
            .iter()
            .map(|m| {
                let item = m
                    .get("item")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ShardError::Format("metric missing item".to_string()))?
                    as usize;
                let name = m
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ShardError::Format("metric missing name".to_string()))?
                    .to_string();
                let value = m
                    .get("value")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ShardError::Format("non-finite metric value".to_string()))?;
                Ok(ShardMetric { item, name, value })
            })
            .collect::<Result<Vec<_>, ShardError>>()?;
        let seed = string("seed")?
            .parse::<u64>()
            .map_err(|_| ShardError::Format("seed is not a u64".to_string()))?;
        Ok(ShardOutput {
            experiment: string("experiment")?,
            kind,
            seed,
            scale_tag: string("scale")?,
            shard,
            n_items: num("n_items")? as usize,
            header,
            rows,
            metrics,
        })
    }
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

/// A complete run reassembled from shard outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedRun {
    pub experiment: String,
    pub kind: DatasetKind,
    pub seed: u64,
    pub scale_tag: String,
    pub n_items: usize,
    pub header: Vec<String>,
    /// Rows in global item order.
    pub rows: Vec<ShardRow>,
    /// Metric samples in global item order.
    pub metrics: Vec<ShardMetric>,
}

/// Merge shard outputs into one run. Accepts the shards in **any
/// order** and validates that they form exactly one run: consistent
/// identity fields, every shard index present exactly once, and row /
/// metric items inside their shard's range with no duplicates.
pub fn merge(outputs: &[ShardOutput]) -> Result<MergedRun, ShardError> {
    let first = outputs
        .first()
        .ok_or_else(|| ShardError::Merge("no shard outputs to merge".to_string()))?;
    let of = first.shard.of;
    if outputs.len() != of {
        return Err(ShardError::Merge(format!(
            "expected {of} shard output(s), got {}",
            outputs.len()
        )));
    }
    let mut ordered: Vec<&ShardOutput> = Vec::with_capacity(of);
    for index in 0..of {
        let matches: Vec<&ShardOutput> =
            outputs.iter().filter(|o| o.shard.index == index).collect();
        match matches.as_slice() {
            [one] => ordered.push(one),
            [] => return Err(ShardError::Merge(format!("missing shard {index}/{of}"))),
            _ => return Err(ShardError::Merge(format!("duplicate shard {index}/{of}"))),
        }
    }
    for o in &ordered {
        let mismatch = |field: &str| {
            ShardError::Merge(format!(
                "{} disagrees on {field} (expected the {} of shard 0)",
                o.shard, first.experiment
            ))
        };
        if o.shard.of != of {
            return Err(ShardError::Merge(format!(
                "{} belongs to a {}-way split, not {of}",
                o.shard, o.shard.of
            )));
        }
        if o.experiment != first.experiment {
            return Err(mismatch("experiment"));
        }
        if o.kind != first.kind {
            return Err(mismatch("dataset kind"));
        }
        if o.seed != first.seed {
            return Err(mismatch("seed"));
        }
        if o.scale_tag != first.scale_tag {
            return Err(mismatch("scale"));
        }
        if o.n_items != first.n_items {
            return Err(mismatch("n_items"));
        }
        if o.header != first.header {
            return Err(mismatch("header"));
        }
        if o.header.is_empty() {
            return Err(ShardError::Merge("empty table header".to_string()));
        }
        let range = o.shard.range(o.n_items);
        for row in &o.rows {
            if !range.contains(&row.item) {
                return Err(ShardError::Merge(format!(
                    "{} produced row for item {} outside its range {range:?}",
                    o.shard, row.item
                )));
            }
            // Arity is validated here so a truncated/hand-edited shard
            // file errors instead of tripping TextTable's assert later.
            if row.cells.len() != o.header.len() {
                return Err(ShardError::Merge(format!(
                    "{} row for item {} has {} cell(s), header has {}",
                    o.shard,
                    row.item,
                    row.cells.len(),
                    o.header.len()
                )));
            }
        }
        for m in &o.metrics {
            if !range.contains(&m.item) {
                return Err(ShardError::Merge(format!(
                    "{} produced metric for item {} outside its range {range:?}",
                    o.shard, m.item
                )));
            }
        }
    }
    // Shard ranges are disjoint and `ordered` is in shard order, so
    // concatenation sorted by item is globally ordered; a stable sort
    // keeps multiple metrics of one item in production order.
    let mut rows: Vec<ShardRow> = ordered.iter().flat_map(|o| o.rows.clone()).collect();
    rows.sort_by_key(|r| r.item);
    let mut last = None;
    for r in &rows {
        if last == Some(r.item) {
            return Err(ShardError::Merge(format!(
                "duplicate row for item {}",
                r.item
            )));
        }
        last = Some(r.item);
    }
    let mut metrics: Vec<ShardMetric> = ordered.iter().flat_map(|o| o.metrics.clone()).collect();
    metrics.sort_by_key(|m| m.item);
    // A repeated (item, name) sample would silently skew the rendered
    // means — reject it like duplicate rows.
    let mut seen: std::collections::HashSet<(usize, &str)> = std::collections::HashSet::new();
    for m in &metrics {
        if !seen.insert((m.item, m.name.as_str())) {
            return Err(ShardError::Merge(format!(
                "duplicate metric {:?} for item {}",
                m.name, m.item
            )));
        }
    }
    Ok(MergedRun {
        experiment: first.experiment.clone(),
        kind: first.kind,
        seed: first.seed,
        scale_tag: first.scale_tag.clone(),
        n_items: first.n_items,
        header: first.header.clone(),
        rows,
        metrics,
    })
}

impl MergedRun {
    /// Render the canonical run report: header line, aligned table, TSV
    /// block, and per-metric summaries. The text depends only on merged
    /// content, never on shard count or completion order — the CI
    /// shard-parity step byte-compares this across shardings.
    pub fn render(&self) -> String {
        let mut out = format!(
            "experiment={} kind={} seed={} scale={} items={} rows={}\n",
            self.experiment,
            self.kind.name(),
            self.seed,
            self.scale_tag,
            self.n_items,
            self.rows.len()
        );
        let header: Vec<&str> = self.header.iter().map(String::as_str).collect();
        let mut table = TextTable::new(&header);
        for row in &self.rows {
            table.row(row.cells.clone());
        }
        out.push('\n');
        out.push_str(&table.render());
        out.push_str("\nTSV:\n");
        out.push_str(&table.render_tsv());
        // Metric summaries: names in order of first appearance; means
        // accumulate in global item order, so the floating-point sum is
        // reproduced exactly.
        let mut names: Vec<&str> = Vec::new();
        for m in &self.metrics {
            if !names.contains(&m.name.as_str()) {
                names.push(&m.name);
            }
        }
        for name in names {
            let values: Vec<f64> = self
                .metrics
                .iter()
                .filter(|m| m.name == name)
                .map(|m| m.value)
                .collect();
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            out.push_str(&format!(
                "metric {name}: mean={mean:.6} n={}\n",
                values.len()
            ));
        }
        out
    }
}

/// Run every shard of an experiment in this process (fanning shards out
/// over the persistent `gced-par` pool) and merge — the in-process
/// alternative to spawning `gced shard` worker processes.
pub fn run_sharded_in_process(
    experiment: &str,
    kind: DatasetKind,
    scale: Scale,
    seed: u64,
    shards: usize,
) -> Result<MergedRun, ShardError> {
    let specs = ShardSpec::all(shards);
    let outputs: Vec<Result<ShardOutput, ShardError>> = gced_par::par_map(&specs, |_, spec| {
        run_shard(experiment, kind, scale, seed, *spec)
    });
    let outputs = outputs.into_iter().collect::<Result<Vec<_>, _>>()?;
    merge(&outputs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_output(shard: ShardSpec) -> ShardOutput {
        let mut rows = Vec::new();
        let mut metrics = Vec::new();
        for item in shard.range(10) {
            rows.push(ShardRow {
                item,
                cells: vec![format!("id-{item}"), (item * 3).to_string()],
            });
            metrics.push(ShardMetric {
                item,
                name: "m".to_string(),
                value: item as f64 / 7.0,
            });
        }
        ShardOutput {
            experiment: "synthetic".to_string(),
            kind: DatasetKind::Squad11,
            seed: 42,
            scale_tag: "train1-dev1-rated1".to_string(),
            shard,
            n_items: 10,
            header: vec!["Id".to_string(), "Value".to_string()],
            rows,
            metrics,
        }
    }

    #[test]
    fn json_roundtrip_preserves_output() {
        let out = tiny_output(ShardSpec::new(1, 3).unwrap());
        let back = ShardOutput::from_json(&out.to_json()).unwrap();
        assert_eq!(out, back);
    }

    #[test]
    fn json_roundtrip_preserves_full_range_seeds() {
        // Seeds above 2^53 must survive the wire format exactly (they
        // would round if routed through the JSON number path).
        let mut out = tiny_output(ShardSpec::single());
        out.seed = u64::MAX - 1;
        let back = ShardOutput::from_json(&out.to_json()).unwrap();
        assert_eq!(back.seed, u64::MAX - 1);
    }

    #[test]
    fn merge_is_order_invariant() {
        let mut outputs: Vec<ShardOutput> =
            ShardSpec::all(4).into_iter().map(tiny_output).collect();
        let merged = merge(&outputs).unwrap();
        outputs.reverse();
        let reversed = merge(&outputs).unwrap();
        assert_eq!(merged, reversed);
        assert_eq!(merged.render(), reversed.render());
        assert_eq!(merged.rows.len(), 10);
        // Also identical to the single-shard run.
        let single = merge(&[tiny_output(ShardSpec::single())]).unwrap();
        assert_eq!(single.render(), merged.render());
    }

    #[test]
    fn merge_rejects_incomplete_and_inconsistent_sets() {
        let outputs: Vec<ShardOutput> = ShardSpec::all(3).into_iter().map(tiny_output).collect();
        assert!(matches!(
            merge(&outputs[..2]).unwrap_err(),
            ShardError::Merge(_)
        ));
        let dup = vec![outputs[0].clone(), outputs[0].clone(), outputs[2].clone()];
        assert!(merge(&dup).is_err());
        let mut wrong_seed = outputs.clone();
        wrong_seed[1].seed = 7;
        assert!(merge(&wrong_seed).is_err());
        let mut out_of_range = outputs.clone();
        out_of_range[0].rows.push(ShardRow {
            item: 9,
            cells: vec!["x".to_string(), "y".to_string()],
        });
        assert!(merge(&out_of_range).is_err());
        let mut dup_metric = outputs.clone();
        let m = dup_metric[0].metrics[0].clone();
        dup_metric[0].metrics.push(m);
        let err = merge(&dup_metric).unwrap_err();
        assert!(err.to_string().contains("duplicate metric"), "{err}");
        let mut bad_arity = outputs.clone();
        bad_arity[1].rows[0].cells.pop();
        let err = merge(&bad_arity).unwrap_err();
        assert!(err.to_string().contains("cell(s)"), "{err}");
        let mut empty_header = outputs.clone();
        for o in &mut empty_header {
            o.header.clear();
            o.rows.clear();
        }
        assert!(merge(&empty_header).is_err());
        assert!(merge(&[]).is_err());
    }

    #[test]
    fn table3_sharded_matches_single_run() {
        let scale = Scale::smoke();
        let outputs: Vec<ShardOutput> = ShardSpec::all(3)
            .into_iter()
            .map(|s| run_shard("table3", DatasetKind::Squad11, scale, 42, s).unwrap())
            .collect();
        let merged = merge(&outputs).unwrap();
        let single = merge(&[run_shard(
            "table3",
            DatasetKind::Squad11,
            scale,
            42,
            ShardSpec::single(),
        )
        .unwrap()])
        .unwrap();
        assert_eq!(merged.render(), single.render());
        assert_eq!(merged.rows.len(), 4);
    }

    #[test]
    fn unknown_experiment_errors() {
        let err = run_shard(
            "tableX",
            DatasetKind::Squad11,
            Scale::smoke(),
            42,
            ShardSpec::single(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown experiment"));
    }
}
