//! Experiment sizing.
//!
//! Paper-scale experiments (3,000 rated QA pairs per model per dataset,
//! full Table III splits) are far beyond a laptop benchmark run, so every
//! experiment takes a [`Scale`]. The default keeps `cargo bench` in the
//! minutes range; `GCED_SCALE=full` approaches paper sample counts, and
//! `GCED_SCALE=smoke` is for CI smoke tests.

/// Sample sizes for one experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Training examples per dataset.
    pub train: usize,
    /// Dev examples used for EM/F1 evaluation.
    pub dev: usize,
    /// QA pairs rated by the human-evaluation protocol per model.
    pub rated: usize,
}

impl Scale {
    /// Benchmark default.
    pub fn default_bench() -> Self {
        Scale {
            train: 360,
            dev: 120,
            rated: 48,
        }
    }

    /// CI smoke scale.
    pub fn smoke() -> Self {
        Scale {
            train: 80,
            dev: 32,
            rated: 12,
        }
    }

    /// Closest-to-paper scale that still terminates in reasonable time
    /// (the paper rates 3,000 pairs per model per dataset).
    pub fn full() -> Self {
        Scale {
            train: 1500,
            dev: 500,
            rated: 300,
        }
    }

    /// Resolve from the `GCED_SCALE` environment variable:
    /// `smoke` | `full` | unset/other → default.
    pub fn from_env() -> Self {
        match std::env::var("GCED_SCALE").as_deref() {
            Ok("smoke") => Scale::smoke(),
            Ok("full") => Scale::full(),
            _ => Scale::default_bench(),
        }
    }

    /// The global experiment seed (`GCED_SEED`, default 42).
    pub fn seed_from_env() -> u64 {
        std::env::var("GCED_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_scales_are_ordered() {
        let s = Scale::smoke();
        let d = Scale::default_bench();
        let f = Scale::full();
        assert!(s.train < d.train && d.train < f.train);
        assert!(s.rated < d.rated && d.rated < f.rated);
    }

    #[test]
    fn from_env_defaults() {
        // The env var is unset in the test harness unless exported.
        let s = Scale::from_env();
        assert!(s.train >= Scale::smoke().train);
    }
}
