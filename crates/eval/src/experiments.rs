//! Experiment runners for every table and figure of the paper.
//!
//! The expensive artifacts (fitted pipeline, ground-truth-based evidence
//! caches) live in an [`ExperimentContext`] so the Table IV/V/VI/VII and
//! Fig. 7 runners can share them; per-model artifacts (predicted-answer
//! evidences) are built inside each runner.

use crate::protocol::{HumanEvalOutcome, RatingProtocol};
use crate::raters::RatedItem;
use crate::scale::Scale;
use gced::{Ablation, Distillation, Gced, GcedConfig};
use gced_datasets::{generate, Dataset, DatasetKind, GeneratorConfig, QaExample, ShardSpec};
use gced_qa::model::EvalResult;
use gced_qa::zoo::ZooEntry;
use gced_qa::QaModel;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Shared artifacts for one dataset.
pub struct ExperimentContext {
    /// The generated dataset.
    pub dataset: Dataset,
    /// The fitted GCED pipeline.
    pub gced: Gced,
    /// Ground-truth-answer-based evidence per training example
    /// (`None` for unanswerable examples or distillation errors).
    pub gt_train: Vec<Option<Distillation>>,
    /// Same for the dev split.
    pub gt_dev: Vec<Option<Distillation>>,
    /// The experiment seed.
    pub seed: u64,
}

impl ExperimentContext {
    /// Generate the dataset, fit the pipeline, and distill the
    /// ground-truth evidence caches.
    pub fn prepare(kind: DatasetKind, scale: Scale, seed: u64) -> Self {
        Self::prepare_shard(kind, scale, seed, ShardSpec::single())
    }

    /// [`ExperimentContext::prepare`] for one shard of a dataset-level
    /// run: the dataset is generated in full and the pipeline is fitted
    /// in full (both seeded by `seed`, so every shard holds identical
    /// shared artifacts), but the expensive ground-truth evidence caches
    /// are distilled only for the examples in `shard`'s contiguous range
    /// of each split — the dominant `prepare` cost scales down by the
    /// shard count. Entries outside the shard stay `None`.
    ///
    /// Because each example's distillation is deterministic and
    /// independent, the union of all shards' caches is element-wise
    /// identical to the single-process [`ExperimentContext::prepare`].
    pub fn prepare_shard(kind: DatasetKind, scale: Scale, seed: u64, shard: ShardSpec) -> Self {
        Self::prepare_with(kind, scale, seed, Some(shard), Some(shard))
    }

    /// The general form: shard the train and dev ground-truth caches
    /// independently, with `None` skipping a split's cache entirely
    /// (all entries `None`). Experiments that never read one cache —
    /// the dev-only word-reduction runner, for instance — avoid paying
    /// for it.
    pub fn prepare_with(
        kind: DatasetKind,
        scale: Scale,
        seed: u64,
        train_shard: Option<ShardSpec>,
        dev_shard: Option<ShardSpec>,
    ) -> Self {
        Self::prepare_fitted(kind, scale, seed, None, train_shard, dev_shard)
    }

    /// [`ExperimentContext::prepare_with`] around an already-fitted
    /// pipeline (the shared fit cache: shard workers decode one
    /// serialized fit instead of re-fitting identical state). The
    /// caller guarantees `gced` was fitted on exactly the dataset that
    /// `(kind, scale, seed)` generates — the fit-cache fingerprint
    /// enforces this on the CLI path. `None` fits fresh.
    pub fn prepare_fitted(
        kind: DatasetKind,
        scale: Scale,
        seed: u64,
        gced: Option<Gced>,
        train_shard: Option<ShardSpec>,
        dev_shard: Option<ShardSpec>,
    ) -> Self {
        let dataset = generate(
            kind,
            GeneratorConfig {
                train: scale.train,
                dev: scale.dev,
                seed,
            },
        );
        let gced = gced.unwrap_or_else(|| {
            Gced::fit(
                &dataset,
                GcedConfig {
                    seed,
                    ..GcedConfig::default()
                },
            )
        });
        let range_of = |shard: Option<ShardSpec>, n: usize| match shard {
            Some(s) => s.range(n),
            None => 0..0,
        };
        let train_range = range_of(train_shard, dataset.train.len());
        let dev_range = range_of(dev_shard, dataset.dev.len());
        let gt_train = distill_split_range(
            &gced,
            "ExperimentContext train gt cache",
            &dataset.train.examples,
            None,
            train_range,
        );
        let gt_dev = distill_split_range(
            &gced,
            "ExperimentContext dev gt cache",
            &dataset.dev.examples,
            None,
            dev_range,
        );
        ExperimentContext {
            dataset,
            gced,
            gt_train,
            gt_dev,
            seed,
        }
    }

    /// Dataset kind shortcut.
    pub fn kind(&self) -> DatasetKind {
        self.dataset.kind
    }

    /// Train split with contexts replaced by ground-truth evidences.
    pub fn evidence_train(&self) -> Vec<QaExample> {
        replace_contexts(&self.dataset.train.examples, &self.gt_train)
    }

    /// Dev split with contexts replaced by ground-truth evidences.
    pub fn evidence_dev(&self) -> Vec<QaExample> {
        replace_contexts(&self.dataset.dev.examples, &self.gt_dev)
    }

    /// Mean word reduction of the ground-truth dev evidences (the
    /// 78.5 % / 87.2 % statistic of Sec. IV-D1).
    pub fn mean_word_reduction(&self) -> f64 {
        let r: Vec<f64> = self
            .gt_dev
            .iter()
            .flatten()
            .map(|d| d.word_reduction)
            .collect();
        if r.is_empty() {
            0.0
        } else {
            r.iter().sum::<f64>() / r.len() as f64
        }
    }
}

/// Distill every answerable example; with `answers: Some(_)`, use the
/// provided per-example answer strings instead of the gold ones (the
/// predicted-answer experiments).
///
/// Runs through [`Gced::distill_batch`], so table runners parallelize
/// their dominant inner loop across worker threads while producing
/// exactly the sequential per-example output.
pub fn distill_split(
    gced: &Gced,
    examples: &[QaExample],
    answers: Option<&[String]>,
) -> Vec<Option<Distillation>> {
    distill_split_range(gced, "distill_split", examples, answers, 0..examples.len())
}

/// [`distill_split`] restricted to the examples whose index falls in
/// `range` (a shard of the split); entries outside it are `None`. The
/// in-range entries are identical to the full run's, which is what the
/// shard merge relies on. `experiment` names the caller in the
/// length-mismatch panic below.
pub fn distill_split_range(
    gced: &Gced,
    experiment: &str,
    examples: &[QaExample],
    answers: Option<&[String]>,
    range: std::ops::Range<usize>,
) -> Vec<Option<Distillation>> {
    // A short predicted-answer vector would panic deep in the indexing
    // loop below with a bare out-of-bounds; validate up front with a
    // message that names the experiment and both lengths.
    if let Some(a) = answers {
        assert_eq!(
            a.len(),
            examples.len(),
            "{experiment}: predicted-answer slice has {} entr{} but the split has {} example(s)",
            a.len(),
            if a.len() == 1 { "y" } else { "ies" },
            examples.len()
        );
    }
    let mut jobs: Vec<(&str, &str, &str)> = Vec::new();
    let mut job_of: Vec<Option<usize>> = Vec::with_capacity(examples.len());
    for (i, ex) in examples.iter().enumerate() {
        let answer = match answers {
            Some(a) => a[i].as_str(),
            None => ex.answer.as_str(),
        };
        if !range.contains(&i) || !ex.answerable || answer.trim().is_empty() {
            job_of.push(None);
        } else {
            job_of.push(Some(jobs.len()));
            jobs.push((ex.question.as_str(), answer, ex.context.as_str()));
        }
    }
    let mut results: Vec<Option<Distillation>> = gced
        .distill_batch(&jobs)
        .into_iter()
        .map(Result::ok)
        .collect();
    job_of
        .into_iter()
        .map(|slot| slot.and_then(|j| results[j].take()))
        .collect()
}

/// Replace contexts with evidence texts where available.
fn replace_contexts(examples: &[QaExample], evidences: &[Option<Distillation>]) -> Vec<QaExample> {
    examples
        .iter()
        .zip(evidences)
        .map(|(ex, ev)| match ev {
            Some(d) if !d.evidence.trim().is_empty() => {
                let mut ex = ex.clone();
                ex.context = d.evidence.clone();
                ex
            }
            _ => ex.clone(),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Tables IV & V: human evaluation of distilled evidences
// ---------------------------------------------------------------------------

/// One row of Table IV/V.
#[derive(Debug, Clone)]
pub struct HumanEvalRow {
    /// Model name ("Ground-truth" for the last row).
    pub source: String,
    /// Aggregated rating outcome.
    pub outcome: HumanEvalOutcome,
    /// Mean word reduction over the rated evidences.
    pub word_reduction: f64,
}

/// The first `scale.rated` answerable dev examples — the pool every
/// rating-based experiment draws from.
pub fn rated_pool(ctx: &ExperimentContext, scale: Scale) -> Vec<&QaExample> {
    ctx.dataset
        .dev
        .examples
        .iter()
        .filter(|e| e.answerable)
        .take(scale.rated)
        .collect()
}

/// One Table IV/V row for one baseline model: distill evidences from
/// its predicted answers and rate them. A pure function of the shared
/// context artifacts, so shard workers computing disjoint model subsets
/// reproduce the monolithic run exactly.
pub fn human_eval_model_row(
    ctx: &ExperimentContext,
    entry: &ZooEntry,
    scale: Scale,
) -> HumanEvalRow {
    let protocol = RatingProtocol::paper(ctx.seed);
    let mut model = QaModel::new(entry.profile.clone());
    model.train(&ctx.dataset.train.examples);
    let mut items = Vec::new();
    let mut reductions = Vec::new();
    for ex in rated_pool(ctx, scale) {
        let pred = model.predict(&ex.question, &ex.context);
        if pred.text.trim().is_empty() {
            continue;
        }
        if let Ok(d) = ctx.gced.distill(&ex.question, &pred.text, &ex.context) {
            items.push(RatedItem::from_distillation(
                format!("{}-{}", entry.profile.name, ex.id),
                &d,
                &pred.text,
            ));
            reductions.push(d.word_reduction);
        }
    }
    HumanEvalRow {
        source: entry.profile.name.clone(),
        outcome: protocol.run(&items),
        word_reduction: mean(&reductions),
    }
}

/// The final Table IV/V row: rate the ground-truth-answer-based
/// evidences from the context's dev cache (which must cover the rated
/// pool, i.e. be prepared unsharded).
pub fn human_eval_gt_row(ctx: &ExperimentContext, scale: Scale) -> HumanEvalRow {
    let protocol = RatingProtocol::paper(ctx.seed);
    let mut items = Vec::new();
    let mut reductions = Vec::new();
    for ex in rated_pool(ctx, scale) {
        let idx = ctx
            .dataset
            .dev
            .examples
            .iter()
            .position(|e| e.id == ex.id)
            .expect("from dev");
        if let Some(d) = &ctx.gt_dev[idx] {
            items.push(RatedItem::from_distillation(
                format!("gt-{}", ex.id),
                d,
                &ex.answer,
            ));
            reductions.push(d.word_reduction);
        }
    }
    HumanEvalRow {
        source: "Ground-truth".to_string(),
        outcome: protocol.run(&items),
        word_reduction: mean(&reductions),
    }
}

/// Run the Table IV/V experiment: for each baseline model, distill
/// evidences from its predicted answers and rate them; the final row
/// rates ground-truth-answer-based evidences.
pub fn human_eval(ctx: &ExperimentContext, zoo: &[ZooEntry], scale: Scale) -> Vec<HumanEvalRow> {
    let mut rows: Vec<HumanEvalRow> = zoo
        .iter()
        .map(|entry| human_eval_model_row(ctx, entry, scale))
        .collect();
    rows.push(human_eval_gt_row(ctx, scale));
    rows
}

/// The Table II agreement study: rate a pooled set of evidences of
/// genuinely mixed quality — ground-truth-based, predicted-answer-based
/// (weak model), and ASE-ablated (noisier) — so Krippendorff's α is
/// computed over variance-bearing data, as in the paper's pooled
/// protocol (3,000 mixed QA pairs per model).
pub fn agreement_study(
    ctx: &ExperimentContext,
    weak_model: &ZooEntry,
    scale: Scale,
) -> HumanEvalOutcome {
    let protocol = RatingProtocol::paper(ctx.seed);
    protocol.run(&agreement_items(ctx, weak_model, scale))
}

/// The pooled mixed-quality [`RatedItem`] set of the agreement study —
/// deterministic shared input for both the monolithic
/// [`agreement_study`] and the per-group sharded runner.
pub fn agreement_items(
    ctx: &ExperimentContext,
    weak_model: &ZooEntry,
    scale: Scale,
) -> Vec<RatedItem> {
    let pool: Vec<&QaExample> = rated_pool(ctx, scale);
    let mut items = Vec::new();
    // Source 1: ground-truth evidences (high quality).
    for ex in &pool {
        let idx = ctx
            .dataset
            .dev
            .examples
            .iter()
            .position(|e| e.id == ex.id)
            .expect("dev");
        if let Some(d) = &ctx.gt_dev[idx] {
            items.push(RatedItem::from_distillation(
                format!("agt-{}", ex.id),
                d,
                &ex.answer,
            ));
        }
    }
    // Source 2: predicted-answer evidences from a weak baseline (mixed).
    let mut model = QaModel::new(weak_model.profile.clone());
    model.train(&ctx.dataset.train.examples);
    for ex in &pool {
        let pred = model.predict(&ex.question, &ex.context);
        if pred.text.trim().is_empty() {
            continue;
        }
        if let Ok(d) = ctx.gced.distill(&ex.question, &pred.text, &ex.context) {
            items.push(RatedItem::from_distillation(
                format!("apr-{}", ex.id),
                &d,
                &pred.text,
            ));
        }
    }
    // Source 3: ASE-ablated evidences (longer, noisier).
    let no_ase = ctx.gced.clone().with_config(GcedConfig {
        ablation: Ablation::without("ASE"),
        seed: ctx.seed,
        ..GcedConfig::default()
    });
    for ex in pool.iter().take(scale.rated / 2) {
        if let Ok(d) = no_ase.distill(&ex.question, &ex.answer, &ex.context) {
            items.push(RatedItem::from_distillation(
                format!("ana-{}", ex.id),
                &d,
                &ex.answer,
            ));
        }
    }
    // Source 4: mismatched pairs — evidence of item i judged for the QA
    // pair of item j. These populate the rubric's low informativeness
    // levels ("only some details identical", "irrelevant"), which real
    // rater pools encounter whenever the system fails; without them α
    // over informativeness degenerates (no item variance).
    for w in pool.windows(2).take(scale.rated / 2) {
        let (ex_i, ex_j) = (w[0], w[1]);
        let idx = ctx
            .dataset
            .dev
            .examples
            .iter()
            .position(|e| e.id == ex_i.id)
            .expect("dev");
        if let Some(d) = &ctx.gt_dev[idx] {
            let pred = ctx.gced.qa_model().predict(&ex_j.question, &d.evidence);
            let inference_f1 = gced_metrics::overlap::token_f1(&pred.text, &ex_j.answer).f1;
            let ev_words: std::collections::HashSet<String> = gced_text::analyze(&d.evidence)
                .tokens
                .iter()
                .map(|t| t.lower())
                .collect();
            let q_doc = gced_text::analyze(&ex_j.question);
            let sig: Vec<String> = q_doc
                .tokens
                .iter()
                .filter(|t| !gced_text::is_insignificant_question_word(&t.lower()))
                .filter(|t| !t.is_punct())
                .map(|t| t.lower())
                .collect();
            let question_overlap = if sig.is_empty() {
                0.5
            } else {
                sig.iter().filter(|word| ev_words.contains(*word)).count() as f64 / sig.len() as f64
            };
            items.push(RatedItem {
                id: format!("mis-{}-{}", ex_i.id, ex_j.id),
                evidence_tokens: d.evidence_tokens.len(),
                answer_tokens: ex_j.answer.split_whitespace().count().max(1),
                inference_f1,
                question_overlap,
                lm_readability: d.scores.readability,
                has_verb: true,
            });
        }
    }
    items
}

// ---------------------------------------------------------------------------
// Tables VI & VII: QA models augmented by ground-truth-based evidences
// ---------------------------------------------------------------------------

/// One row of Table VI/VII.
#[derive(Debug, Clone)]
pub struct QaRow {
    pub model: String,
    /// Measured baseline (raw contexts).
    pub base: EvalResult,
    /// Measured +GCED (evidence contexts, train and dev).
    pub gced: EvalResult,
    /// Published baseline (EM, F1) for this dataset variant.
    pub paper_base: (f64, f64),
    /// Published +GCED (EM, F1).
    pub paper_gced: (f64, f64),
}

/// Which of the two dataset variants a zoo entry's paper numbers to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// SQuAD-1.1 / TriviaQA-Web.
    V1,
    /// SQuAD-2.0 / TriviaQA-Wiki.
    V2,
}

/// The paper's variant for a dataset kind.
pub fn variant_of(kind: DatasetKind) -> Variant {
    match kind {
        DatasetKind::Squad11 | DatasetKind::TriviaWeb => Variant::V1,
        DatasetKind::Squad20 | DatasetKind::TriviaWiki => Variant::V2,
    }
}

/// The baseline zoo of a dataset kind (Tables IV/VI use the SQuAD zoo,
/// Tables V/VII the TriviaQA zoo) — the row axis of the sharded
/// model-grid experiments.
pub fn zoo_for(kind: DatasetKind) -> Vec<ZooEntry> {
    if kind.is_trivia() {
        gced_qa::zoo::trivia_models()
    } else {
        gced_qa::zoo::squad_models()
    }
}

/// One Table VI/VII row: train/evaluate one zoo model on raw contexts
/// and on the evidence-replaced splits. `ev_train`/`ev_dev` are the
/// context-wide evidence splits ([`ExperimentContext::evidence_train`] /
/// [`ExperimentContext::evidence_dev`]), computed once per caller.
pub fn qa_augmentation_row(
    ctx: &ExperimentContext,
    entry: &ZooEntry,
    ev_train: &[QaExample],
    ev_dev: &[QaExample],
) -> QaRow {
    let variant = variant_of(ctx.kind());
    let mut base_model = QaModel::new(entry.profile.clone());
    base_model.train(&ctx.dataset.train.examples);
    let base = base_model.evaluate(&ctx.dataset.dev.examples);
    let mut gced_model = QaModel::new(entry.profile.clone());
    gced_model.train(ev_train);
    let gced = gced_model.evaluate(ev_dev);
    let (paper_base, paper_gced) = match variant {
        Variant::V1 => (entry.paper_v1, entry.paper_v1_gced),
        Variant::V2 => (entry.paper_v2, entry.paper_v2_gced),
    };
    QaRow {
        model: entry.profile.name.clone(),
        base,
        gced,
        paper_base,
        paper_gced,
    }
}

/// Run the Table VI/VII experiment for every zoo model.
pub fn qa_augmentation(ctx: &ExperimentContext, zoo: &[ZooEntry]) -> Vec<QaRow> {
    let ev_train = ctx.evidence_train();
    let ev_dev = ctx.evidence_dev();
    zoo.iter()
        .map(|entry| qa_augmentation_row(ctx, entry, &ev_train, &ev_dev))
        .collect()
}

// ---------------------------------------------------------------------------
// Table VIII: ablation study
// ---------------------------------------------------------------------------

/// One row of Table VIII.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// "BERT+GCED" for the full system, "w/o X" for knockouts.
    pub label: String,
    pub outcome: HumanEvalOutcome,
    pub em: f64,
    pub f1: f64,
}

/// The Table VIII variant list: one knockout per component, the full
/// system last (the item space of the sharded `ablation` runner).
pub fn ablation_variants() -> Vec<(String, Ablation)> {
    let mut variants: Vec<(String, Ablation)> = Ablation::table8_rows()
        .iter()
        .map(|c| (format!("w/o {c}"), Ablation::without(c)))
        .collect();
    variants.push(("BERT+GCED".to_string(), Ablation::full()));
    variants
}

/// One Table VIII row: re-distill both splits under one ablation
/// config, rate the dev evidences, and retrain/evaluate the BERT-like
/// profile on the evidence-replaced splits.
pub fn ablation_row(
    ctx: &ExperimentContext,
    bert: &ZooEntry,
    scale: Scale,
    label: &str,
    ablation: Ablation,
) -> AblationRow {
    let protocol = RatingProtocol::paper(ctx.seed);
    let cfg = GcedConfig {
        ablation,
        seed: ctx.seed,
        ..GcedConfig::default()
    };
    let pipeline = ctx.gced.clone().with_config(cfg);
    let train_ev = distill_split(&pipeline, &ctx.dataset.train.examples, None);
    let dev_ev = distill_split(&pipeline, &ctx.dataset.dev.examples, None);
    // Human evaluation over the first `rated` dev evidences.
    let items: Vec<RatedItem> = ctx
        .dataset
        .dev
        .examples
        .iter()
        .zip(&dev_ev)
        .filter_map(|(ex, d)| {
            d.as_ref()
                .map(|d| RatedItem::from_distillation(format!("{label}-{}", ex.id), d, &ex.answer))
        })
        .take(scale.rated)
        .collect();
    let outcome = protocol.run(&items);
    // QA augmentation with this variant's evidences.
    let mut model = QaModel::new(bert.profile.clone());
    model.train(&replace_contexts(&ctx.dataset.train.examples, &train_ev));
    let eval = model.evaluate(&replace_contexts(&ctx.dataset.dev.examples, &dev_ev));
    AblationRow {
        label: label.to_string(),
        outcome,
        em: eval.em,
        f1: eval.f1,
    }
}

/// Run the Table VIII ablation: BERT profile, ground-truth evidences,
/// one row per knocked-out component plus the full system.
pub fn ablation(ctx: &ExperimentContext, bert: &ZooEntry, scale: Scale) -> Vec<AblationRow> {
    ablation_variants()
        .into_iter()
        .map(|(label, ablation)| ablation_row(ctx, bert, scale, &label, ablation))
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 7: degradation under predicted-answer substitution
// ---------------------------------------------------------------------------

/// One model's degradation curve.
#[derive(Debug, Clone)]
pub struct DegradationSeries {
    pub model: String,
    /// (δ, EM, F1) per substitution rate; δ = 0 is the ground-truth
    /// point ("gt" in Fig. 7).
    pub points: Vec<(f64, f64, f64)>,
}

/// The canonical Fig. 7 substitution rates (δ = 0 is the ground-truth
/// point) — the column axis of the sharded `degradation` grid.
pub const DEGRADATION_DELTAS: [f64; 5] = [0.0, 0.2, 0.5, 0.8, 1.0];

/// One model's per-row artifacts for the Fig. 7 grid: its
/// predicted-answer evidences for both splits. Expensive (one
/// prediction + distillation pass per split), shared by every δ-point
/// of the model's row.
pub struct PredictedEvidences {
    pub train: Vec<Option<Distillation>>,
    pub dev: Vec<Option<Distillation>>,
}

/// Build one model's [`PredictedEvidences`]: train the baseline, predict
/// both splits, distill from the predicted answers.
pub fn predicted_evidences(ctx: &ExperimentContext, entry: &ZooEntry) -> PredictedEvidences {
    let mut model = QaModel::new(entry.profile.clone());
    model.train(&ctx.dataset.train.examples);
    let pred_train = predict_answers(&model, &ctx.dataset.train.examples);
    let pred_dev = predict_answers(&model, &ctx.dataset.dev.examples);
    PredictedEvidences {
        train: distill_split_range(
            &ctx.gced,
            "degradation (predicted-answer train split)",
            &ctx.dataset.train.examples,
            Some(&pred_train),
            0..ctx.dataset.train.len(),
        ),
        dev: distill_split_range(
            &ctx.gced,
            "degradation (predicted-answer dev split)",
            &ctx.dataset.dev.examples,
            Some(&pred_dev),
            0..ctx.dataset.dev.len(),
        ),
    }
}

/// One Fig. 7 point: mix ground-truth and predicted evidences at rate
/// `delta`, retrain the model on the mix, evaluate against gold
/// answers. Returns `(delta, em, f1)`.
pub fn degradation_point(
    ctx: &ExperimentContext,
    entry: &ZooEntry,
    pred: &PredictedEvidences,
    delta: f64,
) -> (f64, f64, f64) {
    let train = mix_splits(
        &ctx.dataset.train.examples,
        &ctx.gt_train,
        &pred.train,
        delta,
        ctx.seed,
    );
    let dev = mix_splits(
        &ctx.dataset.dev.examples,
        &ctx.gt_dev,
        &pred.dev,
        delta,
        ctx.seed ^ 1,
    );
    let mut m = QaModel::new(entry.profile.clone());
    m.train(&train);
    let e = m.evaluate(&dev);
    (delta, e.em, e.f1)
}

/// Run the Fig. 7 experiment: substitute a δ-fraction of ground-truth
/// answers with each model's predicted answers before distillation,
/// retrain on the mixed evidences, and evaluate against the gold
/// answers.
pub fn degradation(
    ctx: &ExperimentContext,
    zoo: &[ZooEntry],
    deltas: &[f64],
) -> Vec<DegradationSeries> {
    zoo.iter()
        .map(|entry| {
            let pred = predicted_evidences(ctx, entry);
            let points = deltas
                .iter()
                .map(|&delta| degradation_point(ctx, entry, &pred, delta))
                .collect();
            DegradationSeries {
                model: entry.profile.name.clone(),
                points,
            }
        })
        .collect()
}

fn predict_answers(model: &QaModel, examples: &[QaExample]) -> Vec<String> {
    examples
        .iter()
        .map(|ex| model.predict(&ex.question, &ex.context).text)
        .collect()
}

/// Per-example coin flip with probability δ selects the predicted-answer
/// evidence, otherwise the ground-truth one (paper: "randomly substitute
/// δ percent of ground-truth answers with predicted answers").
fn mix_splits(
    examples: &[QaExample],
    gt: &[Option<Distillation>],
    pred: &[Option<Distillation>],
    delta: f64,
    seed: u64,
) -> Vec<QaExample> {
    let chosen: Vec<Option<Distillation>> = examples
        .iter()
        .enumerate()
        .map(|(i, ex)| {
            let mut h = DefaultHasher::new();
            seed.hash(&mut h);
            ex.id.hash(&mut h);
            let u = (h.finish() % 10_000) as f64 / 10_000.0;
            let take_pred = u < delta;
            if take_pred {
                pred[i].clone().or_else(|| gt[i].clone())
            } else {
                gt[i].clone()
            }
        })
        .collect();
    replace_contexts(examples, &chosen)
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// A shared smoke-scale context (preparation costs seconds).
    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::prepare(DatasetKind::Squad11, Scale::smoke(), 42))
    }

    #[test]
    fn context_caches_evidences() {
        let c = ctx();
        assert_eq!(c.gt_train.len(), c.dataset.train.len());
        assert_eq!(c.gt_dev.len(), c.dataset.dev.len());
        let n_some = c.gt_dev.iter().flatten().count();
        assert!(n_some > 0, "no dev evidences distilled");
        assert!(c.mean_word_reduction() > 0.2);
    }

    #[test]
    fn evidence_split_replaces_contexts() {
        let c = ctx();
        let ev = c.evidence_dev();
        let changed = ev
            .iter()
            .zip(&c.dataset.dev.examples)
            .filter(|(a, b)| a.context != b.context)
            .count();
        assert!(changed > 0);
        // Evidences must be shorter on average.
        let before: usize = c.dataset.dev.examples.iter().map(|e| e.context.len()).sum();
        let after: usize = ev.iter().map(|e| e.context.len()).sum();
        assert!(after < before);
    }

    #[test]
    fn qa_augmentation_improves_models() {
        let c = ctx();
        let zoo = &gced_qa::zoo::squad_models()[..2];
        let rows = qa_augmentation(c, zoo);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                r.gced.f1 >= r.base.f1 - 3.0,
                "{}: GCED F1 {} far below base {}",
                r.model,
                r.gced.f1,
                r.base.f1
            );
        }
        // At least one model must show a real gain.
        assert!(rows.iter().any(|r| r.gced.f1 > r.base.f1));
    }

    #[test]
    fn human_eval_produces_rows_with_gt_last() {
        let c = ctx();
        let zoo = &gced_qa::zoo::squad_models()[..1];
        let rows = human_eval(c, zoo, Scale::smoke());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.last().unwrap().source, "Ground-truth");
        for r in &rows {
            assert!(r.outcome.rated > 0, "{} rated nothing", r.source);
            assert!(
                r.outcome.hybrid > 0.4,
                "{}: H = {}",
                r.source,
                r.outcome.hybrid
            );
        }
    }

    #[test]
    fn degradation_points_cover_deltas() {
        let c = ctx();
        let zoo = &gced_qa::zoo::squad_models()[..1];
        let series = degradation(c, zoo, &[0.0, 1.0]);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].points.len(), 2);
        let em0 = series[0].points[0].1;
        let em1 = series[0].points[1].1;
        assert!(
            em1 <= em0 + 10.0,
            "full substitution should not beat gt by much: {em0} -> {em1}"
        );
    }

    #[test]
    #[should_panic(expected = "predicted-answer slice has 1 entry")]
    fn distill_split_rejects_mismatched_answer_slice() {
        let c = ctx();
        let too_short = vec!["Denver Broncos".to_string()];
        let _ = distill_split_range(
            &c.gced,
            "qa_augmentation",
            &c.dataset.dev.examples,
            Some(&too_short),
            0..c.dataset.dev.len(),
        );
    }

    #[test]
    fn variant_mapping() {
        assert_eq!(variant_of(DatasetKind::Squad11), Variant::V1);
        assert_eq!(variant_of(DatasetKind::Squad20), Variant::V2);
        assert_eq!(variant_of(DatasetKind::TriviaWeb), Variant::V1);
        assert_eq!(variant_of(DatasetKind::TriviaWiki), Variant::V2);
    }
}
