//! A minimal reusable JSON codec.
//!
//! The build environment cannot fetch `serde_json`, so this module
//! carries the hand-rolled recursive-descent parser the dataset loader
//! introduced in PR 1, promoted to a public module: the shard runner
//! (`gced-eval`), the bench-regression gate (`gced-bench`), and the
//! dataset I/O all parse the same way. The on-disk formats stay plain
//! JSON, readable by any standard tool.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parse error: message plus byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the failure.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document (trailing content is ignored).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    Parser::new(text).value()
}

/// Append `s` as a JSON string literal (quotes + escapes) to `out`.
pub fn push_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite `f64` in shortest-roundtrip form (`{:?}`), which the
/// parser reads back bit-exactly. Non-finite values become `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

pub(crate) struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            message: msg.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'
            )
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    /// Four hex digits of a `\u` escape, advancing past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.err("malformed \\u escape"))?;
        self.pos += 4;
        Ok(hex)
    }

    pub(crate) fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let unit = self.hex4()?;
                            // UTF-16 surrogate pairs: a high surrogate
                            // must be followed by `\uDC00..=\uDFFF`.
                            let code = if (0xd800..=0xdbff).contains(&unit) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xdc00..=0xdfff).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00)
                            } else {
                                unit
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-align to the char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        let v = parse("{\"a\": [1, true, null, \"x\"], \"b\": -2.5e3}").unwrap();
        assert_eq!(v.get("b").and_then(Json::as_f64), Some(-2500.0));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1], Json::Bool(true));
        assert_eq!(arr[2], Json::Null);
        assert_eq!(arr[3].as_str(), Some("x"));
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        // "😀" = 😀 — produced by any ensure_ascii JSON writer.
        let mut parser = Parser::new("\"a \\ud83d\\ude00 b\"");
        assert_eq!(parser.string().unwrap(), "a \u{1f600} b");
        // Unpaired high surrogate is rejected, not mis-decoded.
        let mut bad = Parser::new("\"\\ud83d x\"");
        assert!(bad.string().is_err());
        let mut bad2 = Parser::new("\"\\ud83d\\u0041\"");
        assert!(bad2.string().is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let mut s = String::new();
        push_string(&mut s, "a \"quote\" \\ and\nnewline\ttab é");
        let mut parser = Parser::new(&s);
        assert_eq!(
            parser.string().unwrap(),
            "a \"quote\" \\ and\nnewline\ttab é"
        );
    }

    #[test]
    fn f64_roundtrips_bit_exactly() {
        for v in [0.0, -1.5, 0.1 + 0.2, 1e-12, f64::MAX, 785.0 / 1000.0] {
            let mut s = String::new();
            push_f64(&mut s, v);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v:?} -> {s} -> {back:?}");
        }
        let mut s = String::new();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("{\"a\": }").unwrap_err();
        assert!(err.to_string().contains("at byte"));
    }

    #[test]
    fn every_control_character_roundtrips() {
        // The wire path (serve requests/responses, shard outputs) must
        // survive the full C0 range, not just the named escapes.
        for c in (0u32..0x20).chain([0x7f]) {
            let c = char::from_u32(c).unwrap();
            let original = format!("a{c}b");
            let mut s = String::new();
            push_string(&mut s, &original);
            let mut parser = Parser::new(&s);
            assert_eq!(parser.string().unwrap(), original, "U+{:04X}", c as u32);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Characters that stress every encoder/decoder branch: named
    /// escapes, unnamed control characters, ASCII, 2–4-byte UTF-8
    /// (including astral plane, which `ensure_ascii` writers emit as
    /// surrogate pairs), and RTL/combining marks.
    fn wire_char() -> impl Strategy<Value = char> {
        prop::sample::select(vec![
            '"',
            '\\',
            '/',
            '\n',
            '\r',
            '\t',
            '\u{8}',
            '\u{c}',
            '\u{0}',
            '\u{1}',
            '\u{1f}',
            '\u{7f}',
            'a',
            'Z',
            '0',
            ' ',
            'é',
            'ß',
            'ñ',
            '中',
            '日',
            'क',
            'م',
            '\u{0301}',
            '\u{2014}',
            '€',
            '😀',
            '🦀',
            '𝔊',
            '\u{10FFFF}',
        ])
    }

    fn wire_string() -> impl Strategy<Value = String> {
        prop::collection::vec(wire_char(), 0..48).prop_map(|cs| cs.into_iter().collect())
    }

    proptest! {
        /// encode → decode is the identity on arbitrary strings mixing
        /// escapes, control characters, and multi-byte UTF-8.
        #[test]
        fn string_literals_roundtrip(original in wire_string()) {
            let mut encoded = String::new();
            push_string(&mut encoded, &original);
            let mut parser = Parser::new(&encoded);
            prop_assert_eq!(parser.string().unwrap(), original);
        }

        /// The same strings survive as object keys and array payloads
        /// inside a full document parse (the wire path never calls the
        /// string scanner directly).
        #[test]
        fn documents_roundtrip_wire_strings(key in wire_string(), value in wire_string()) {
            let mut doc = String::from("{");
            push_string(&mut doc, &key);
            doc.push(':');
            doc.push('[');
            push_string(&mut doc, &value);
            doc.push_str("]}");
            let root = parse(&doc).unwrap();
            let arr = root.get(&key).and_then(Json::as_arr).unwrap();
            prop_assert_eq!(arr[0].as_str(), Some(value.as_str()));
        }

        /// Finite f64s round-trip bit-exactly through the number path.
        #[test]
        fn f64_roundtrips(bits in 0u64..u64::MAX) {
            let v = f64::from_bits(bits);
            prop_assume!(v.is_finite());
            let mut s = String::new();
            push_f64(&mut s, v);
            let back = parse(&s).unwrap().as_f64().unwrap();
            prop_assert_eq!(v.to_bits(), back.to_bits());
        }
    }
}
