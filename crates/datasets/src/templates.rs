//! Domain scenario templates.
//!
//! A [`Scenario`] is a small "document model": an ordered list of
//! sentences about one entity plus the QA pairs it supports, each QA pair
//! pointing at the sentence(s) containing its answer. The generator
//! assembles contexts by always including a QA pair's support sentences
//! and sampling the rest as noise — reproducing the fact-plus-noise
//! structure of Fig. 1 in the paper.

use crate::pools::*;
use crate::Domain;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// A question/answer seed within a scenario.
#[derive(Debug, Clone)]
pub struct QaSeed {
    pub question: String,
    pub answer: String,
    /// Acceptable aliases (always contains `answer`).
    pub aliases: Vec<String>,
    /// Indices into [`Scenario::sentences`] that must appear in the
    /// context for the question to be answerable.
    pub support: Vec<usize>,
}

/// An entity-centric bundle of sentences and QA pairs.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub domain: Domain,
    pub sentences: Vec<String>,
    pub qa: Vec<QaSeed>,
}

/// Build a scenario for `domain` from the seeded RNG.
pub fn build(domain: Domain, rng: &mut SmallRng) -> Scenario {
    match domain {
        Domain::Sports => sports(rng),
        Domain::Music => music(rng),
        Domain::History => history(rng),
        Domain::Geography => geography(rng),
        Domain::Science => science(rng),
    }
}

fn pick<'a>(pool: &[&'a str], rng: &mut SmallRng) -> &'a str {
    pool.choose(rng).expect("pools are non-empty")
}

/// Two distinct picks from one pool.
fn pick2<'a>(pool: &[&'a str], rng: &mut SmallRng) -> (&'a str, &'a str) {
    let a = pick(pool, rng);
    loop {
        let b = pick(pool, rng);
        if b != a {
            return (a, b);
        }
    }
}

fn person(rng: &mut SmallRng) -> String {
    format!("{} {}", pick(FIRST_NAMES, rng), pick(LAST_NAMES, rng))
}

fn seed(question: String, answer: &str, support: Vec<usize>) -> QaSeed {
    QaSeed {
        question,
        answer: answer.to_string(),
        aliases: vec![answer.to_string()],
        support,
    }
}

fn sports(rng: &mut SmallRng) -> Scenario {
    let (city1, city2) = pick2(CITIES, rng);
    let (mascot1, mascot2) = pick2(MASCOTS, rng);
    let team1 = format!("{city1} {mascot1}");
    let team2 = format!("{city2} {mascot2}");
    let event = format!("{} {}", pick(SPORTS_EVENTS, rng), rng.gen_range(10..60));
    let year = rng.gen_range(1970..2016).to_string();
    let city3 = pick(CITIES, rng);
    let stadium = format!("{} {}", pick(LAST_NAMES, rng), pick(STADIUM_SUFFIX, rng));
    let coach = person(rng);
    let sentences = vec![
        format!(
            "The American Football Conference (AFC) champion {team1} defeated the National \
             Football Conference (NFC) champion {team2} to earn the {event} title."
        ),
        format!("The {mascot1} won the final game in {year}."),
        format!("The {event} was played at {stadium} in {city3}."),
        format!("Coach {coach} had led the {mascot1} for many seasons before the final."),
        format!("Fans celebrated in the streets of {city1} for several days."),
        "The halftime show featured a famous singer and a large fireworks display.".to_string(),
        "Ticket prices rose to record levels in the weeks before the game.".to_string(),
    ];
    let mut s1 = seed(
        format!("Which NFL team represented the AFC at {event}?"),
        &team1,
        vec![0],
    );
    s1.aliases.push(mascot1.to_string());
    let mut s2 = seed(
        format!("Which team did the {team1} defeat in the {event}?"),
        &team2,
        vec![0],
    );
    s2.aliases.push(mascot2.to_string());
    let qa = vec![
        s1,
        s2,
        seed(
            format!("When did the {mascot1} win the final game?"),
            &year,
            vec![1],
        ),
        seed(format!("Where was the {event} played?"), &stadium, vec![2]),
        seed(
            format!("Who coached the {mascot1} before the final?"),
            &coach,
            vec![3],
        ),
    ];
    Scenario {
        domain: Domain::Sports,
        sentences,
        qa,
    }
}

fn music(rng: &mut SmallRng) -> Scenario {
    // Occasionally hyphenate the surname, mirroring the paper's
    // "Knowles-Carter" case-study artist.
    let first = pick(FIRST_NAMES, rng);
    let (l1, l2) = pick2(LAST_NAMES, rng);
    let artist = if rng.gen_bool(0.3) {
        format!("{first} {l1}-{l2}")
    } else {
        format!("{first} {l1}")
    };
    let city = pick(CITIES, rng);
    let genre = pick(GENRES, rng);
    let instrument = pick(INSTRUMENTS, rng);
    let award = pick(AWARDS, rng);
    let album = pick(ALBUMS, rng);
    let decade = rng.gen_range(195..201) * 10;
    let year2 = rng.gen_range(1980..2020).to_string();
    let sentences = vec![
        format!("{artist} was born and raised in {city}."),
        format!("{artist} performed in various singing and dancing competitions as a child."),
        format!(
            "{artist} rose to fame in the {decade}s as the lead singer of a famous {genre} band."
        ),
        format!(
            "The singer later released the album {album}, which won a {award} award in {year2}."
        ),
        format!("{artist} also played the {instrument} during early performances."),
        "Critics praised the album for its bold style and clear voice.".to_string(),
        "The tour that followed visited many large arenas.".to_string(),
    ];
    let qa = vec![
        seed(
            format!("What did {artist} perform in as a child?"),
            "singing and dancing competitions",
            vec![1],
        ),
        seed(format!("Where was {artist} born?"), city, vec![0]),
        seed(
            format!("Which album of {artist} won a {award} award?"),
            album,
            vec![3],
        ),
        seed(
            format!("When did the album {album} win a {award} award?"),
            &year2,
            vec![3],
        ),
        seed(
            format!("Which instrument did {artist} play?"),
            instrument,
            vec![4],
        ),
    ];
    Scenario {
        domain: Domain::Music,
        sentences,
        qa,
    }
}

fn history(rng: &mut SmallRng) -> Scenario {
    const EPITHETS: &[&str] = &[
        "Conqueror",
        "Bold",
        "Wise",
        "Fearless",
        "Great",
        "Pious",
        "Young",
    ];
    let figure = format!("{} the {}", pick(FIRST_NAMES, rng), pick(EPITHETS, rng));
    let (country, country2) = pick2(COUNTRIES, rng);
    let battle = pick(BATTLES, rng);
    let year = rng.gen_range(900..1700).to_string();
    let country3 = pick(COUNTRIES, rng);
    let sentences = vec![
        format!(
            "{figure}, the duke of {country}, led troops to victory in the Battle of {battle} \
             in {year}."
        ),
        format!("After the battle, {figure} was crowned king of {country2}."),
        "The battle lasted from dawn until late in the afternoon.".to_string(),
        "Chroniclers wrote that the army marched for nine days without rest.".to_string(),
        format!("The treaty that followed reshaped the borders of {country3}."),
        "Many castles were built along the coast in the years after the war.".to_string(),
    ];
    let qa = vec![
        seed(
            format!("Who led troops to victory in the Battle of {battle}?"),
            &figure,
            vec![0],
        ),
        seed(
            format!("When was the Battle of {battle} fought?"),
            &year,
            vec![0],
        ),
        seed(
            format!("Where was {figure} crowned king?"),
            country2,
            vec![1],
        ),
        seed(format!("Which duchy did {figure} rule?"), country, vec![0]),
    ];
    Scenario {
        domain: Domain::History,
        sentences,
        qa,
    }
}

fn geography(rng: &mut SmallRng) -> Scenario {
    let city = pick(CITIES, rng);
    let country = pick(COUNTRIES, rng);
    let river = pick(RIVERS, rng);
    let millions = rng.gen_range(1..15).to_string();
    let year = rng.gen_range(1200..1950).to_string();
    let sentences = vec![
        format!("{city} is the capital of {country}."),
        format!("The {river} River flows through the center of {city}."),
        format!("{city} has a population of about {millions} million people."),
        format!("The old bridge across the {river} was built in {year}."),
        "Tourists visit the famous museum near the northern gate every summer.".to_string(),
        "The region is known for its mild climate and long harvest season.".to_string(),
    ];
    let qa = vec![
        seed(format!("What is the capital of {country}?"), city, vec![0]),
        seed(
            format!("Which river flows through the center of {city}?"),
            river,
            vec![1],
        ),
        seed(
            format!("When was the old bridge across the {river} built?"),
            &year,
            vec![3],
        ),
        seed(
            format!("How many million people live in {city}?"),
            &millions,
            vec![2],
        ),
    ];
    Scenario {
        domain: Domain::Geography,
        sentences,
        qa,
    }
}

fn science(rng: &mut SmallRng) -> Scenario {
    let scientist = person(rng);
    let element = pick(ELEMENTS, rng);
    let theory = pick(THEORIES, rng);
    let university = pick(UNIVERSITIES, rng);
    let year = rng.gen_range(1750..1980).to_string();
    let sentences = vec![
        format!("{scientist} discovered {element} in {year}."),
        format!("{scientist} studied physics at {university}."),
        format!("The discovery of {element} earned {scientist} a Nobel prize."),
        "Laboratory notebooks from that period are kept in the city museum.".to_string(),
        format!("{scientist} later developed the theory of {theory}."),
        "Students from many countries traveled to attend the famous lectures.".to_string(),
    ];
    let last = scientist
        .split(' ')
        .next_back()
        .expect("person has two names")
        .to_string();
    let mut who = seed(format!("Who discovered {element}?"), &scientist, vec![0]);
    who.aliases.push(last);
    let qa = vec![
        who,
        seed(format!("When was {element} discovered?"), &year, vec![0]),
        seed(
            format!("Which element did {scientist} discover?"),
            element,
            vec![0],
        ),
        seed(
            format!("What theory did {scientist} develop?"),
            theory,
            vec![4],
        ),
        seed(
            format!("Where did {scientist} study physics?"),
            university,
            vec![1],
        ),
    ];
    Scenario {
        domain: Domain::Science,
        sentences,
        qa,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn every_domain_builds() {
        let mut r = rng();
        for d in Domain::all() {
            let s = build(d, &mut r);
            assert_eq!(s.domain, d);
            assert!(s.sentences.len() >= 5, "{d:?} too few sentences");
            assert!(s.qa.len() >= 3, "{d:?} too few QA pairs");
        }
    }

    #[test]
    fn answers_appear_in_their_support_sentences() {
        let mut r = rng();
        for d in Domain::all() {
            for _ in 0..20 {
                let s = build(d, &mut r);
                for qa in &s.qa {
                    assert!(!qa.support.is_empty());
                    let found = qa
                        .support
                        .iter()
                        .any(|&i| s.sentences[i].contains(&qa.answer));
                    assert!(
                        found,
                        "{d:?}: answer {:?} not in support sentences {:?}",
                        qa.answer, qa.support
                    );
                }
            }
        }
    }

    #[test]
    fn aliases_include_answer() {
        let mut r = rng();
        for d in Domain::all() {
            let s = build(d, &mut r);
            for qa in &s.qa {
                assert!(qa.aliases.contains(&qa.answer));
            }
        }
    }

    #[test]
    fn scenarios_are_deterministic_per_seed() {
        let mut r1 = SmallRng::seed_from_u64(99);
        let mut r2 = SmallRng::seed_from_u64(99);
        let s1 = build(Domain::Sports, &mut r1);
        let s2 = build(Domain::Sports, &mut r2);
        assert_eq!(s1.sentences, s2.sentences);
    }

    #[test]
    fn pick2_returns_distinct() {
        let mut r = rng();
        for _ in 0..50 {
            let (a, b) = pick2(CITIES, &mut r);
            assert_ne!(a, b);
        }
    }

    #[test]
    fn support_indices_in_bounds() {
        let mut r = rng();
        for d in Domain::all() {
            let s = build(d, &mut r);
            for qa in &s.qa {
                for &i in &qa.support {
                    assert!(i < s.sentences.len());
                }
            }
        }
    }
}
