//! Deterministic shard planning for dataset-level runs.
//!
//! A whole-dataset experiment is split into *items* (dataset kinds,
//! examples, …). A [`ShardSpec`] names one of `of` shards and owns a
//! contiguous, balanced range of the item space; the ranges of all
//! shards partition `0..n_items` exactly, so per-shard outputs can be
//! reassembled into the single-process result without overlap or gaps.
//!
//! Per-shard seeds are pure functions of the base seed and the shard
//! index ([`shard_seed`]): stable across runs and machines, so shard
//! workers that need private randomness (scratch RNG streams, jitter)
//! stay reproducible. Note that *shared* artifacts — dataset
//! generation, pipeline fitting — must keep using the base seed itself;
//! that is what makes a merged sharded run bit-identical to the
//! single-process run.

use std::ops::Range;

/// One shard of a run split `of` ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    /// Shard index in `0..of`.
    pub index: usize,
    /// Total number of shards (≥ 1).
    pub of: usize,
}

impl ShardSpec {
    /// Validated constructor: `of ≥ 1` and `index < of`.
    pub fn new(index: usize, of: usize) -> Result<Self, String> {
        if of == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if index >= of {
            return Err(format!(
                "shard index {index} out of range for {of} shard(s)"
            ));
        }
        Ok(ShardSpec { index, of })
    }

    /// The whole run as a single shard.
    pub fn single() -> Self {
        ShardSpec { index: 0, of: 1 }
    }

    /// True when this spec covers the whole run.
    pub fn is_single(&self) -> bool {
        self.of == 1
    }

    /// Every shard of an `of`-way split, in index order.
    pub fn all(of: usize) -> Vec<ShardSpec> {
        (0..of.max(1))
            .map(|index| ShardSpec {
                index,
                of: of.max(1),
            })
            .collect()
    }

    /// This shard's contiguous item range out of `n_items`. Ranges are
    /// balanced (sizes differ by at most one) and partition
    /// `0..n_items` exactly across `ShardSpec::all(of)`.
    pub fn range(&self, n_items: usize) -> Range<usize> {
        let lo = (n_items as u128 * self.index as u128 / self.of as u128) as usize;
        let hi = (n_items as u128 * (self.index as u128 + 1) / self.of as u128) as usize;
        lo..hi
    }

    /// True when this shard owns item `i` of `n_items`.
    pub fn owns(&self, i: usize, n_items: usize) -> bool {
        self.range(n_items).contains(&i)
    }

    /// This shard's derived seed (see [`shard_seed`]).
    pub fn seed(&self, base: u64) -> u64 {
        shard_seed(base, self.index as u64)
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {}/{}", self.index, self.of)
    }
}

/// A two-dimensional item space for grid-shaped experiments
/// (model × example, model × substitution-rate, …).
///
/// Items are numbered row-major: item `r * cols + c` is cell `(r, c)`.
/// A [`ShardSpec::range`] over `Grid::len()` therefore covers a
/// contiguous run of cells, and [`Grid::rows_of`] names the rows a
/// shard touches — the per-row artifacts (a trained baseline model,
/// its predicted-answer evidences) it must build exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Grid {
    /// Number of rows (the expensive axis, e.g. models).
    pub rows: usize,
    /// Number of columns per row (the cheap axis, e.g. examples).
    pub cols: usize,
}

impl Grid {
    /// A `rows × cols` grid. Either axis may be zero (an empty grid).
    pub fn new(rows: usize, cols: usize) -> Self {
        Grid { rows, cols }
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True when the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `(row, col)` cell of a global item index.
    pub fn cell(&self, item: usize) -> (usize, usize) {
        assert!(
            self.cols > 0 && item < self.len(),
            "item {item} outside {self:?}"
        );
        (item / self.cols, item % self.cols)
    }

    /// The global item index of a cell.
    pub fn item(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.rows && col < self.cols,
            "cell ({row},{col}) outside {self:?}"
        );
        row * self.cols + col
    }

    /// The rows intersected by a contiguous item range (e.g. a shard's
    /// [`ShardSpec::range`] over `Grid::len()`). Empty ranges give an
    /// empty row range.
    pub fn rows_of(&self, range: &Range<usize>) -> Range<usize> {
        if range.is_empty() || self.cols == 0 {
            return 0..0;
        }
        (range.start / self.cols)..(range.end - 1) / self.cols + 1
    }
}

/// The contiguous ranges of every shard of an `of`-way split over
/// `n_items` items, in shard order.
pub fn plan(n_items: usize, of: usize) -> Vec<Range<usize>> {
    ShardSpec::all(of)
        .into_iter()
        .map(|s| s.range(n_items))
        .collect()
}

/// Deterministic per-shard seed: splitmix64 over the base seed and the
/// shard index. Stable across runs, platforms, and shard counts for a
/// given `(base, index)` pair, and well-spread across indices.
pub fn shard_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(index.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_item_space() {
        for n in [0usize, 1, 2, 3, 4, 7, 16, 100, 101] {
            for of in 1..=9 {
                let ranges = plan(n, of);
                assert_eq!(ranges.len(), of);
                let mut covered = Vec::new();
                for r in &ranges {
                    covered.extend(r.clone());
                }
                let expected: Vec<usize> = (0..n).collect();
                assert_eq!(covered, expected, "n={n} of={of}");
                // Balanced: sizes differ by at most one.
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(hi - lo <= 1, "n={n} of={of} sizes={sizes:?}");
            }
        }
    }

    #[test]
    fn spec_validation() {
        assert!(ShardSpec::new(0, 0).is_err());
        assert!(ShardSpec::new(3, 3).is_err());
        let s = ShardSpec::new(2, 3).unwrap();
        assert_eq!(s.index, 2);
        assert!(!s.is_single());
        assert!(ShardSpec::single().is_single());
        assert_eq!(format!("{s}"), "shard 2/3");
    }

    #[test]
    fn ownership_matches_range() {
        let n = 23;
        for of in 1..=5 {
            for i in 0..n {
                let owners: Vec<usize> = ShardSpec::all(of)
                    .into_iter()
                    .filter(|s| s.owns(i, n))
                    .map(|s| s.index)
                    .collect();
                assert_eq!(owners.len(), 1, "item {i} owned by {owners:?}");
            }
        }
    }

    #[test]
    fn grid_items_roundtrip_row_major() {
        let g = Grid::new(3, 5);
        assert_eq!(g.len(), 15);
        assert!(!g.is_empty());
        for item in 0..g.len() {
            let (r, c) = g.cell(item);
            assert_eq!(g.item(r, c), item);
        }
        assert_eq!(g.cell(0), (0, 0));
        assert_eq!(g.cell(14), (2, 4));
        assert!(Grid::new(0, 5).is_empty());
        assert!(Grid::new(5, 0).is_empty());
    }

    #[test]
    fn grid_rows_of_covers_exactly_the_touched_rows() {
        let g = Grid::new(4, 3);
        for of in 1..=8 {
            for spec in ShardSpec::all(of) {
                let range = spec.range(g.len());
                let rows = g.rows_of(&range);
                // Every item's row is inside `rows`, and every row in
                // `rows` owns at least one item of the range.
                for item in range.clone() {
                    assert!(rows.contains(&g.cell(item).0), "{spec} item {item}");
                }
                for r in rows.clone() {
                    assert!(
                        range.clone().any(|item| g.cell(item).0 == r),
                        "{spec} row {r} never touched"
                    );
                }
                if range.is_empty() {
                    assert!(rows.is_empty());
                }
            }
        }
        assert_eq!(g.rows_of(&(0..0)), 0..0);
        assert_eq!(Grid::new(0, 0).rows_of(&(0..0)), 0..0);
    }

    #[test]
    fn shard_seeds_are_stable_and_distinct() {
        let a: Vec<u64> = (0..64).map(|i| shard_seed(42, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| shard_seed(42, i)).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "seed collision");
        assert_ne!(shard_seed(42, 0), shard_seed(43, 0));
        assert_eq!(ShardSpec::single().seed(7), shard_seed(7, 0));
    }
}
