//! Entity pools for the synthetic corpora.
//!
//! Names are a mix of real-world and invented forms; what matters for the
//! reproduction is vocabulary diversity (so the QA task is non-trivial)
//! and stable overlap with the embedded lexicon.

pub const CITIES: &[&str] = &[
    "Denver",
    "Carolina",
    "Boston",
    "Chicago",
    "Atlanta",
    "Portland",
    "Austin",
    "Phoenix",
    "Seattle",
    "Dallas",
    "Memphis",
    "Oakland",
    "Richmond",
    "Savannah",
    "Lincoln",
    "Madison",
    "Arlington",
    "Fairview",
    "Brookhaven",
    "Westfield",
    "Clarkson",
    "Hartley",
    "Milton",
    "Norwood",
    "Ashford",
    "Marlow",
    "Kingsley",
    "Redmond",
    "Sheffield",
    "Brighton",
];

pub const MASCOTS: &[&str] = &[
    "Broncos",
    "Panthers",
    "Eagles",
    "Falcons",
    "Sharks",
    "Wolves",
    "Tigers",
    "Hawks",
    "Bears",
    "Lions",
    "Raiders",
    "Chargers",
    "Titans",
    "Knights",
    "Pioneers",
    "Comets",
    "Rangers",
    "Storm",
    "Thunder",
    "Mariners",
    "Colts",
    "Stallions",
    "Cougars",
    "Vikings",
];

pub const FIRST_NAMES: &[&str] = &[
    "William",
    "Henry",
    "Maria",
    "Clara",
    "Edward",
    "Isabel",
    "Thomas",
    "Eleanor",
    "James",
    "Sofia",
    "Arthur",
    "Lucia",
    "Robert",
    "Helena",
    "Charles",
    "Beatrice",
    "George",
    "Amelia",
    "Frederick",
    "Rosalind",
    "Albert",
    "Vivian",
    "Walter",
    "Margaret",
    "Hugh",
    "Cecilia",
    "Oscar",
    "Matilda",
    "Leon",
    "Adele",
];

pub const LAST_NAMES: &[&str] = &[
    "Knowles",
    "Carter",
    "Hastings",
    "Norton",
    "Whitfield",
    "Mercer",
    "Calloway",
    "Draper",
    "Ellington",
    "Fairbanks",
    "Granger",
    "Holloway",
    "Irving",
    "Jardine",
    "Kingsford",
    "Lockwood",
    "Marchetti",
    "Newcombe",
    "Oakes",
    "Pemberton",
    "Quimby",
    "Rutherford",
    "Sinclair",
    "Thackeray",
    "Underwood",
    "Vance",
    "Wexford",
    "Yardley",
    "Abernathy",
    "Blackwood",
];

pub const COUNTRIES: &[&str] = &[
    "France",
    "Normandy",
    "England",
    "Aquitaine",
    "Castile",
    "Bavaria",
    "Tuscany",
    "Saxony",
    "Flanders",
    "Burgundy",
    "Navarre",
    "Lombardy",
    "Bohemia",
    "Aragon",
    "Provence",
];

pub const RIVERS: &[&str] = &[
    "Seine", "Thames", "Rhine", "Danube", "Loire", "Elbe", "Tagus", "Severn", "Clyde", "Arno",
];

pub const BATTLES: &[&str] = &[
    "Hastings",
    "Agincourt",
    "Crecy",
    "Bosworth",
    "Towton",
    "Naseby",
    "Falkirk",
    "Stamford",
    "Maldon",
    "Tewkesbury",
];

pub const ELEMENTS: &[&str] = &[
    "radium", "polonium", "helium", "argon", "cesium", "thorium", "gallium", "iridium", "selenium",
    "vanadium",
];

pub const THEORIES: &[&str] = &[
    "relativity",
    "evolution",
    "gravitation",
    "electromagnetism",
    "thermodynamics",
    "radioactivity",
    "heredity",
    "plate tectonics",
];

pub const GENRES: &[&str] = &[
    "jazz", "blues", "opera", "pop", "rock", "folk", "soul", "gospel",
];

pub const INSTRUMENTS: &[&str] = &[
    "violin", "piano", "guitar", "cello", "flute", "trumpet", "drums",
];

pub const AWARDS: &[&str] = &["Grammy", "Platinum", "Golden Note", "Harmony", "Crescendo"];

pub const ALBUMS: &[&str] = &[
    "Midnight Rivers",
    "Golden Hour",
    "Paper Crowns",
    "Silver Lining",
    "Distant Shores",
    "Crimson Sky",
    "Velvet Road",
    "Morning Glass",
    "Hollow Moon",
    "Summer Static",
];

pub const STADIUM_SUFFIX: &[&str] = &["Stadium", "Arena", "Field", "Dome", "Park"];

pub const SPORTS_EVENTS: &[&str] = &[
    "Super Bowl",
    "Championship Final",
    "National Cup",
    "League Final",
    "Grand Final",
];

pub const UNIVERSITIES: &[&str] = &[
    "Northfield University",
    "Ashford College",
    "Brookhaven Institute",
    "Clarkson University",
    "Hartley Academy",
    "Redmond Institute",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_unique() {
        for pool in [
            CITIES,
            MASCOTS,
            FIRST_NAMES,
            LAST_NAMES,
            COUNTRIES,
            RIVERS,
            BATTLES,
            ELEMENTS,
            THEORIES,
            GENRES,
            INSTRUMENTS,
            AWARDS,
            ALBUMS,
            SPORTS_EVENTS,
            UNIVERSITIES,
        ] {
            assert!(!pool.is_empty());
            let set: std::collections::HashSet<_> = pool.iter().collect();
            assert_eq!(set.len(), pool.len(), "duplicates in pool {pool:?}");
        }
    }

    #[test]
    fn pools_are_large_enough_for_variety() {
        assert!(CITIES.len() >= 20);
        assert!(MASCOTS.len() >= 20);
        assert!(FIRST_NAMES.len() * LAST_NAMES.len() >= 500);
    }
}
