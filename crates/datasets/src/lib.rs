//! # gced-datasets — synthetic SQuAD- and TriviaQA-style corpora
//!
//! The paper evaluates on SQuAD-1.1/2.0 and TriviaQA-Web/Wiki, none of
//! which can be downloaded offline. This crate generates **seeded
//! synthetic equivalents** that preserve the properties GCED interacts
//! with (see DESIGN.md S6):
//!
//! * every answerable question's answer is a literal span of its context;
//! * contexts mix *fact sentences* (QA-related) with *distractor
//!   sentences* (noise) — the structure Fig. 1 of the paper illustrates;
//! * SQuAD-style contexts are entity-centric Wikipedia-like paragraphs
//!   with moderate noise; SQuAD-2.0 adds unanswerable questions;
//! * TriviaQA-style contexts are longer, noisier, multi-source documents
//!   with cross-domain distractor sentences and answer aliases — this is
//!   what drives the larger word-reduction (87.2 % vs 78.5 %) and the
//!   larger +GCED gains of Table VII;
//! * split sizes follow Table III, scaled by a configurable factor.
//!
//! Everything is generated from five entity-template domains (sports,
//! music, history, geography, science) whose vocabulary is covered by the
//! embedded lexicon in `gced-lexicon`.

pub mod generator;
pub mod io;
pub mod json;
pub mod pools;
pub mod shard;
pub mod templates;

pub use generator::{generate, GeneratorConfig};
pub use io::{load_json, save_json};
pub use shard::{Grid, ShardSpec};

/// Which of the paper's four datasets to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// SQuAD-1.1: Wikipedia paragraphs, all questions answerable.
    Squad11,
    /// SQuAD-2.0: SQuAD-1.1 plus unanswerable questions.
    Squad20,
    /// TriviaQA (web search results): long, noisy, multi-source.
    TriviaWeb,
    /// TriviaQA (Wikipedia): long but cleaner than web.
    TriviaWiki,
}

impl DatasetKind {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Squad11 => "SQuAD-1.1",
            DatasetKind::Squad20 => "SQuAD-2.0",
            DatasetKind::TriviaWeb => "TriviaQA-Web",
            DatasetKind::TriviaWiki => "TriviaQA-Wiki",
        }
    }

    /// Inverse of [`DatasetKind::name`] (shard-output JSON decode).
    pub fn from_name(name: &str) -> Option<DatasetKind> {
        DatasetKind::all().into_iter().find(|k| k.name() == name)
    }

    /// CLI flag spelling (`--kind` of the `gced` binary).
    pub fn cli_flag(self) -> &'static str {
        match self {
            DatasetKind::Squad11 => "squad11",
            DatasetKind::Squad20 => "squad20",
            DatasetKind::TriviaWeb => "trivia-web",
            DatasetKind::TriviaWiki => "trivia-wiki",
        }
    }

    /// Inverse of [`DatasetKind::cli_flag`].
    pub fn from_cli_flag(flag: &str) -> Option<DatasetKind> {
        DatasetKind::all()
            .into_iter()
            .find(|k| k.cli_flag() == flag)
    }

    /// Paper split sizes (Table III): (train, dev).
    pub fn paper_sizes(self) -> (usize, usize) {
        match self {
            DatasetKind::Squad11 => (87_599, 10_570),
            DatasetKind::Squad20 => (130_319, 6_078),
            DatasetKind::TriviaWeb => (100_000, 68_621),
            DatasetKind::TriviaWiki => (110_647, 14_229),
        }
    }

    /// True for the TriviaQA family.
    pub fn is_trivia(self) -> bool {
        matches!(self, DatasetKind::TriviaWeb | DatasetKind::TriviaWiki)
    }

    /// All four datasets, in paper order.
    pub fn all() -> [DatasetKind; 4] {
        [
            DatasetKind::Squad11,
            DatasetKind::Squad20,
            DatasetKind::TriviaWeb,
            DatasetKind::TriviaWiki,
        ]
    }
}

/// Content domain of a generated example.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    Sports,
    Music,
    History,
    Geography,
    Science,
}

impl Domain {
    /// All domains.
    pub fn all() -> [Domain; 5] {
        [
            Domain::Sports,
            Domain::Music,
            Domain::History,
            Domain::Geography,
            Domain::Science,
        ]
    }
}

/// One (question, answer, context) tuple — the paper's (qᵢ, aᵢ, cᵢ).
#[derive(Debug, Clone, PartialEq)]
pub struct QaExample {
    /// Stable identifier ("squad11-train-000042").
    pub id: String,
    /// Natural-language question.
    pub question: String,
    /// The context paragraph (the answer is a literal span of it when
    /// `answerable`).
    pub context: String,
    /// Ground-truth answer text ("" when unanswerable).
    pub answer: String,
    /// Acceptable answer aliases (TriviaQA convention; includes `answer`).
    pub aliases: Vec<String>,
    /// False for SQuAD-2.0 negatives.
    pub answerable: bool,
    /// Generation domain.
    pub domain: Domain,
}

impl QaExample {
    /// True when the answer occurs verbatim in the context.
    pub fn answer_in_context(&self) -> bool {
        !self.answerable || self.context.contains(&self.answer)
    }
}

/// A dataset split.
#[derive(Debug, Clone, PartialEq)]
pub struct Split {
    pub examples: Vec<QaExample>,
}

impl Split {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }
}

/// A full dataset: name + train/dev splits.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    pub kind: DatasetKind,
    pub train: Split,
    pub dev: Split,
}

impl Dataset {
    /// Lowercased token sentences of every context (for LM / embedding
    /// training), via the shared analyzer.
    pub fn corpus_sentences(&self) -> Vec<Vec<String>> {
        let mut out = Vec::new();
        for ex in self.train.examples.iter().chain(&self.dev.examples) {
            let doc = gced_text::analyze(&ex.context);
            for s in &doc.sentences {
                out.push(
                    doc.tokens[s.token_start..s.token_end]
                        .iter()
                        .map(|t| t.text.to_lowercase())
                        .collect(),
                );
            }
        }
        out
    }

    /// Mean context length in whitespace words (reported next to the
    /// paper's word-reduction statistics).
    pub fn mean_context_words(&self) -> f64 {
        let all: Vec<&QaExample> = self
            .train
            .examples
            .iter()
            .chain(&self.dev.examples)
            .collect();
        if all.is_empty() {
            return 0.0;
        }
        let total: usize = all
            .iter()
            .map(|e| e.context.split_whitespace().count())
            .sum();
        total as f64 / all.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match_table3() {
        assert_eq!(DatasetKind::Squad11.paper_sizes(), (87_599, 10_570));
        assert_eq!(DatasetKind::Squad20.paper_sizes(), (130_319, 6_078));
        assert_eq!(DatasetKind::TriviaWiki.paper_sizes(), (110_647, 14_229));
        assert_eq!(DatasetKind::TriviaWeb.paper_sizes(), (100_000, 68_621));
    }

    #[test]
    fn kind_names_match_paper() {
        assert_eq!(DatasetKind::Squad11.name(), "SQuAD-1.1");
        assert_eq!(DatasetKind::TriviaWeb.name(), "TriviaQA-Web");
        assert!(DatasetKind::TriviaWeb.is_trivia());
        assert!(!DatasetKind::Squad20.is_trivia());
    }

    #[test]
    fn answer_in_context_for_unanswerable() {
        let ex = QaExample {
            id: "x".into(),
            question: "q".into(),
            context: "nothing here".into(),
            answer: "".into(),
            aliases: vec![],
            answerable: false,
            domain: Domain::Sports,
        };
        assert!(ex.answer_in_context());
    }
}
