//! Dataset assembly: scenarios → contexts → splits.
//!
//! Per-kind context styles (DESIGN.md S6):
//! * **SQuAD-1.1** — support sentences + 2–4 same-entity noise sentences;
//! * **SQuAD-2.0** — same, plus ~1/3 unanswerable questions whose context
//!   comes from a *different* scenario of the same domain;
//! * **TriviaQA-Wiki** — support + 4–7 noise sentences + 1–2 cross-domain
//!   distractor sentences (longer, noisier documents);
//! * **TriviaQA-Web** — support + 5–9 noise + 2–4 cross-domain
//!   distractors, and answer aliases are actually used.

use crate::templates::{build, Scenario};
use crate::{Dataset, DatasetKind, Domain, QaExample, Split};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Size and style configuration for generation.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Number of training examples.
    pub train: usize,
    /// Number of dev examples.
    pub dev: usize,
    /// Base RNG seed; every example derives its own stream from it.
    pub seed: u64,
}

impl GeneratorConfig {
    /// Table III sizes scaled by `factor` (minimum 16 examples per split
    /// so every experiment has data even at tiny scales).
    pub fn scaled(kind: DatasetKind, factor: f64, seed: u64) -> Self {
        let (t, d) = kind.paper_sizes();
        GeneratorConfig {
            train: ((t as f64 * factor) as usize).max(16),
            dev: ((d as f64 * factor) as usize).max(16),
            seed,
        }
    }

    /// A small fixed-size config for tests.
    pub fn tiny(seed: u64) -> Self {
        GeneratorConfig {
            train: 48,
            dev: 24,
            seed,
        }
    }
}

/// Generate a full dataset of the given kind.
pub fn generate(kind: DatasetKind, config: GeneratorConfig) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ kind_salt(kind));
    let train = gen_split(kind, config.train, "train", &mut rng);
    let dev = gen_split(kind, config.dev, "dev", &mut rng);
    Dataset { kind, train, dev }
}

fn kind_salt(kind: DatasetKind) -> u64 {
    match kind {
        DatasetKind::Squad11 => 0x5155_3131,
        DatasetKind::Squad20 => 0x5155_3230,
        DatasetKind::TriviaWeb => 0x5452_5745,
        DatasetKind::TriviaWiki => 0x5452_5749,
    }
}

fn gen_split(kind: DatasetKind, n: usize, split: &str, rng: &mut SmallRng) -> Split {
    let mut examples = Vec::with_capacity(n);
    for i in 0..n {
        examples.push(gen_example(kind, split, i, rng));
    }
    Split { examples }
}

/// Style knobs per dataset kind.
struct Style {
    noise: std::ops::Range<usize>,
    cross_domain: std::ops::Range<usize>,
    unanswerable_rate: f64,
    use_aliases: bool,
}

fn style(kind: DatasetKind) -> Style {
    match kind {
        DatasetKind::Squad11 => Style {
            noise: 2..5,
            cross_domain: 0..1,
            unanswerable_rate: 0.0,
            use_aliases: false,
        },
        DatasetKind::Squad20 => Style {
            noise: 2..5,
            cross_domain: 0..1,
            unanswerable_rate: 0.33,
            use_aliases: false,
        },
        DatasetKind::TriviaWiki => Style {
            noise: 4..7,
            cross_domain: 1..3,
            unanswerable_rate: 0.0,
            use_aliases: true,
        },
        DatasetKind::TriviaWeb => Style {
            noise: 5..9,
            cross_domain: 2..5,
            unanswerable_rate: 0.0,
            use_aliases: true,
        },
    }
}

fn gen_example(kind: DatasetKind, split: &str, index: usize, rng: &mut SmallRng) -> QaExample {
    let st = style(kind);
    let domain = *Domain::all().choose(rng).expect("domains non-empty");
    let scenario = build(domain, rng);
    let qa_idx = rng.gen_range(0..scenario.qa.len());

    if rng.gen_bool(st.unanswerable_rate) {
        return gen_unanswerable(kind, split, index, &scenario, qa_idx, rng);
    }

    let qa = &scenario.qa[qa_idx];
    let context = assemble_context(&scenario, &qa.support, &st, rng);
    debug_assert!(
        context.contains(&qa.answer),
        "answer must be a context span"
    );
    let aliases = if st.use_aliases {
        let mut a = qa.aliases.clone();
        let lower = qa.answer.to_lowercase();
        if !a.contains(&lower) {
            a.push(lower);
        }
        a
    } else {
        vec![qa.answer.clone()]
    };
    QaExample {
        id: format!("{}-{split}-{index:06}", kind.name().to_lowercase()),
        question: qa.question.clone(),
        context,
        answer: qa.answer.clone(),
        aliases,
        answerable: true,
        domain,
    }
}

/// SQuAD-2.0 negative: the question comes from one scenario, the context
/// from a different scenario of the same domain, re-rolled until the
/// answer string genuinely does not occur in the context.
fn gen_unanswerable(
    kind: DatasetKind,
    split: &str,
    index: usize,
    q_scenario: &Scenario,
    qa_idx: usize,
    rng: &mut SmallRng,
) -> QaExample {
    let st = style(kind);
    let qa = &q_scenario.qa[qa_idx];
    let context = loop {
        let other = build(q_scenario.domain, rng);
        let ctx = assemble_context(&other, &[], &st, rng);
        if !ctx.contains(&qa.answer) {
            break ctx;
        }
    };
    QaExample {
        id: format!("{}-{split}-{index:06}", kind.name().to_lowercase()),
        question: qa.question.clone(),
        context,
        answer: String::new(),
        aliases: vec![],
        answerable: false,
        domain: q_scenario.domain,
    }
}

/// Pick support ∪ noise sentences (in document order) and append
/// cross-domain distractors for the TriviaQA styles.
fn assemble_context(
    scenario: &Scenario,
    support: &[usize],
    st: &Style,
    rng: &mut SmallRng,
) -> String {
    let n = scenario.sentences.len();
    let mut chosen: Vec<usize> = support.to_vec();
    let mut others: Vec<usize> = (0..n).filter(|i| !support.contains(i)).collect();
    others.shuffle(rng);
    let noise = rng.gen_range(st.noise.clone()).min(others.len());
    chosen.extend(others.into_iter().take(noise));
    chosen.sort_unstable();
    chosen.dedup();
    let mut parts: Vec<String> = chosen
        .iter()
        .map(|&i| scenario.sentences[i].clone())
        .collect();

    let cross = rng.gen_range(st.cross_domain.clone());
    for _ in 0..cross {
        let d = *Domain::all().choose(rng).expect("domains non-empty");
        let s = build(d, rng);
        let idx = rng.gen_range(0..s.sentences.len());
        parts.push(s.sentences[idx].clone());
    }
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_sizes() {
        let ds = generate(DatasetKind::Squad11, GeneratorConfig::tiny(1));
        assert_eq!(ds.train.len(), 48);
        assert_eq!(ds.dev.len(), 24);
    }

    #[test]
    fn answers_are_context_spans() {
        for kind in DatasetKind::all() {
            let ds = generate(kind, GeneratorConfig::tiny(2));
            for ex in ds.train.examples.iter().chain(&ds.dev.examples) {
                assert!(
                    ex.answer_in_context(),
                    "{}: answer {:?} missing",
                    ex.id,
                    ex.answer
                );
                if ex.answerable {
                    assert!(!ex.answer.is_empty());
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(DatasetKind::TriviaWeb, GeneratorConfig::tiny(3));
        let b = generate(DatasetKind::TriviaWeb, GeneratorConfig::tiny(3));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(DatasetKind::Squad11, GeneratorConfig::tiny(1));
        let b = generate(DatasetKind::Squad11, GeneratorConfig::tiny(2));
        assert_ne!(a, b);
    }

    #[test]
    fn squad2_contains_unanswerable() {
        let ds = generate(
            DatasetKind::Squad20,
            GeneratorConfig {
                train: 200,
                dev: 50,
                seed: 5,
            },
        );
        let neg = ds.train.examples.iter().filter(|e| !e.answerable).count();
        let rate = neg as f64 / ds.train.len() as f64;
        assert!(rate > 0.2 && rate < 0.5, "unanswerable rate {rate}");
        // Negatives genuinely lack the answer (empty answer, no aliases).
        for ex in ds.train.examples.iter().filter(|e| !e.answerable) {
            assert!(ex.answer.is_empty());
        }
    }

    #[test]
    fn squad1_has_no_unanswerable() {
        let ds = generate(DatasetKind::Squad11, GeneratorConfig::tiny(7));
        assert!(ds.train.examples.iter().all(|e| e.answerable));
    }

    #[test]
    fn trivia_contexts_are_longer_than_squad() {
        let squad = generate(
            DatasetKind::Squad11,
            GeneratorConfig {
                train: 150,
                dev: 16,
                seed: 9,
            },
        );
        let trivia = generate(
            DatasetKind::TriviaWeb,
            GeneratorConfig {
                train: 150,
                dev: 16,
                seed: 9,
            },
        );
        assert!(
            trivia.mean_context_words() > squad.mean_context_words() * 1.3,
            "trivia {} vs squad {}",
            trivia.mean_context_words(),
            squad.mean_context_words()
        );
    }

    #[test]
    fn trivia_has_aliases() {
        let ds = generate(DatasetKind::TriviaWeb, GeneratorConfig::tiny(11));
        assert!(ds.train.examples.iter().any(|e| e.aliases.len() > 1));
    }

    #[test]
    fn ids_are_unique() {
        let ds = generate(DatasetKind::Squad11, GeneratorConfig::tiny(13));
        let mut ids: Vec<&str> = ds
            .train
            .examples
            .iter()
            .chain(&ds.dev.examples)
            .map(|e| e.id.as_str())
            .collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn scaled_config_respects_minimum() {
        let c = GeneratorConfig::scaled(DatasetKind::Squad11, 0.000_001, 1);
        assert!(c.train >= 16 && c.dev >= 16);
        let c2 = GeneratorConfig::scaled(DatasetKind::Squad11, 0.01, 1);
        assert_eq!(c2.train, 875);
        assert_eq!(c2.dev, 105);
    }

    #[test]
    fn corpus_sentences_nonempty() {
        let ds = generate(DatasetKind::Squad11, GeneratorConfig::tiny(17));
        let corpus = ds.corpus_sentences();
        assert!(corpus.len() > ds.train.len());
        assert!(corpus.iter().all(|s| !s.is_empty()));
    }
}
