//! JSON (de)serialization for datasets.
//!
//! SQuAD and TriviaQA ship as JSON; reproducing their loaders means a
//! JSON codec. The parser lives in the shared [`crate::json`] module;
//! this module owns the one schema it reads and writes (flat examples
//! inside a versioned envelope). The on-disk format is plain JSON,
//! readable by any standard tool.

use crate::json::{self, Json};
use crate::{Dataset, DatasetKind, Domain, QaExample, Split};
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

/// Schema version written into every file.
const SCHEMA_VERSION: u32 = 1;

/// Errors from dataset I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Malformed JSON or schema mismatch.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Write a dataset as JSON.
pub fn save_json(dataset: &Dataset, path: &Path) -> Result<(), IoError> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    writer.write_all(encode(dataset).as_bytes())?;
    Ok(())
}

/// Load a dataset written by [`save_json`].
pub fn load_json(path: &Path) -> Result<Dataset, IoError> {
    let mut file = File::open(path)?;
    let mut text = String::new();
    file.read_to_string(&mut text)?;
    decode(&text)
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn encode(dataset: &Dataset) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"version\":");
    out.push_str(&SCHEMA_VERSION.to_string());
    out.push_str(",\"kind\":");
    json::push_string(&mut out, kind_tag(dataset.kind));
    out.push_str(",\"train\":");
    encode_split(&mut out, &dataset.train);
    out.push_str(",\"dev\":");
    encode_split(&mut out, &dataset.dev);
    out.push('}');
    out
}

fn encode_split(out: &mut String, split: &Split) {
    out.push('[');
    for (i, ex) in split.examples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":");
        json::push_string(out, &ex.id);
        out.push_str(",\"question\":");
        json::push_string(out, &ex.question);
        out.push_str(",\"context\":");
        json::push_string(out, &ex.context);
        out.push_str(",\"answer\":");
        json::push_string(out, &ex.answer);
        out.push_str(",\"aliases\":[");
        for (j, a) in ex.aliases.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json::push_string(out, a);
        }
        out.push_str("],\"answerable\":");
        out.push_str(if ex.answerable { "true" } else { "false" });
        out.push_str(",\"domain\":");
        json::push_string(out, domain_tag(ex.domain));
        out.push('}');
    }
    out.push(']');
}

fn kind_tag(kind: DatasetKind) -> &'static str {
    match kind {
        DatasetKind::Squad11 => "Squad11",
        DatasetKind::Squad20 => "Squad20",
        DatasetKind::TriviaWeb => "TriviaWeb",
        DatasetKind::TriviaWiki => "TriviaWiki",
    }
}

fn domain_tag(d: Domain) -> &'static str {
    match d {
        Domain::Sports => "Sports",
        Domain::Music => "Music",
        Domain::History => "History",
        Domain::Geography => "Geography",
        Domain::Science => "Science",
    }
}

// ---------------------------------------------------------------------------
// Decoding: shared JSON parser (crate::json) plus schema mapping.
// ---------------------------------------------------------------------------

fn decode(text: &str) -> Result<Dataset, IoError> {
    let root = json::parse(text).map_err(|e| IoError::Format(e.to_string()))?;
    let version = match root.get("version") {
        Some(Json::Num(v)) => *v as u32,
        _ => return Err(IoError::Format("missing version".into())),
    };
    if version != SCHEMA_VERSION {
        return Err(IoError::Format(format!(
            "unsupported schema version {version} (expected {SCHEMA_VERSION})"
        )));
    }
    let kind = match root.get("kind").and_then(Json::as_str) {
        Some("Squad11") => DatasetKind::Squad11,
        Some("Squad20") => DatasetKind::Squad20,
        Some("TriviaWeb") => DatasetKind::TriviaWeb,
        Some("TriviaWiki") => DatasetKind::TriviaWiki,
        other => return Err(IoError::Format(format!("unknown dataset kind {other:?}"))),
    };
    let train = decode_split(root.get("train"))?;
    let dev = decode_split(root.get("dev"))?;
    Ok(Dataset { kind, train, dev })
}

fn decode_split(value: Option<&Json>) -> Result<Split, IoError> {
    let Some(Json::Arr(items)) = value else {
        return Err(IoError::Format("missing split array".into()));
    };
    let examples = items
        .iter()
        .map(decode_example)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Split { examples })
}

fn decode_example(v: &Json) -> Result<QaExample, IoError> {
    let field = |key: &str| -> Result<String, IoError> {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| IoError::Format(format!("missing string field {key:?}")))
    };
    let aliases = match v.get("aliases") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|a| {
                a.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| IoError::Format("non-string alias".into()))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err(IoError::Format("missing aliases".into())),
    };
    let answerable = match v.get("answerable") {
        Some(Json::Bool(b)) => *b,
        _ => return Err(IoError::Format("missing answerable".into())),
    };
    let domain = match v.get("domain").and_then(Json::as_str) {
        Some("Sports") => Domain::Sports,
        Some("Music") => Domain::Music,
        Some("History") => Domain::History,
        Some("Geography") => Domain::Geography,
        Some("Science") => Domain::Science,
        other => return Err(IoError::Format(format!("unknown domain {other:?}"))),
    };
    Ok(QaExample {
        id: field("id")?,
        question: field("question")?,
        context: field("context")?,
        answer: field("answer")?,
        aliases,
        answerable,
        domain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};
    use crate::DatasetKind;

    #[test]
    fn roundtrip_preserves_dataset() {
        let ds = generate(DatasetKind::Squad11, GeneratorConfig::tiny(23));
        let dir = std::env::temp_dir();
        let path = dir.join("gced_roundtrip_test.json");
        save_json(&ds, &path).unwrap();
        let loaded = load_json(&path).unwrap();
        assert_eq!(ds, loaded);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_json(Path::new("/nonexistent/gced.json")).unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
        assert!(err.to_string().contains("io error"));
    }

    #[test]
    fn load_malformed_json_errors() {
        let dir = std::env::temp_dir();
        let path = dir.join("gced_malformed_test.json");
        std::fs::write(&path, b"{not json").unwrap();
        let err = load_json(&path).unwrap_err();
        assert!(matches!(err, IoError::Format(_)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn version_mismatch_errors() {
        let ds = generate(
            DatasetKind::Squad11,
            GeneratorConfig {
                train: 16,
                dev: 16,
                seed: 1,
            },
        );
        let json = encode(&ds).replacen("\"version\":1", "\"version\":999", 1);
        let dir = std::env::temp_dir();
        let path = dir.join("gced_version_test.json");
        std::fs::write(&path, json).unwrap();
        let err = load_json(&path).unwrap_err();
        assert!(err.to_string().contains("version"));
        let _ = std::fs::remove_file(&path);
    }
}
