//! JSON (de)serialization for datasets.
//!
//! SQuAD and TriviaQA ship as JSON; reproducing their loaders means a
//! JSON codec, which is why `serde_json` is a dependency (DESIGN.md §2).
//! The on-disk schema is this crate's own (flat examples), versioned for
//! forward compatibility.

use crate::Dataset;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// Schema version written into every file.
const SCHEMA_VERSION: u32 = 1;

#[derive(Serialize, Deserialize)]
struct FileEnvelope {
    version: u32,
    dataset: Dataset,
}

/// Errors from dataset I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Malformed JSON or schema mismatch.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Write a dataset as pretty JSON.
pub fn save_json(dataset: &Dataset, path: &Path) -> Result<(), IoError> {
    let file = File::create(path)?;
    let writer = BufWriter::new(file);
    let env = FileEnvelope { version: SCHEMA_VERSION, dataset: dataset.clone() };
    serde_json::to_writer(writer, &env).map_err(|e| IoError::Format(e.to_string()))
}

/// Load a dataset written by [`save_json`].
pub fn load_json(path: &Path) -> Result<Dataset, IoError> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let env: FileEnvelope =
        serde_json::from_reader(reader).map_err(|e| IoError::Format(e.to_string()))?;
    if env.version != SCHEMA_VERSION {
        return Err(IoError::Format(format!(
            "unsupported schema version {} (expected {SCHEMA_VERSION})",
            env.version
        )));
    }
    Ok(env.dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};
    use crate::DatasetKind;

    #[test]
    fn roundtrip_preserves_dataset() {
        let ds = generate(DatasetKind::Squad11, GeneratorConfig::tiny(23));
        let dir = std::env::temp_dir();
        let path = dir.join("gced_roundtrip_test.json");
        save_json(&ds, &path).unwrap();
        let loaded = load_json(&path).unwrap();
        assert_eq!(ds, loaded);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_json(Path::new("/nonexistent/gced.json")).unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
        assert!(err.to_string().contains("io error"));
    }

    #[test]
    fn load_malformed_json_errors() {
        let dir = std::env::temp_dir();
        let path = dir.join("gced_malformed_test.json");
        std::fs::write(&path, b"{not json").unwrap();
        let err = load_json(&path).unwrap_err();
        assert!(matches!(err, IoError::Format(_)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn version_mismatch_errors() {
        let ds = generate(DatasetKind::Squad11, GeneratorConfig { train: 16, dev: 16, seed: 1 });
        let env = FileEnvelope { version: 999, dataset: ds };
        let dir = std::env::temp_dir();
        let path = dir.join("gced_version_test.json");
        std::fs::write(&path, serde_json::to_vec(&env).unwrap()).unwrap();
        let err = load_json(&path).unwrap_err();
        assert!(err.to_string().contains("version"));
        let _ = std::fs::remove_file(&path);
    }
}
