//! JSON (de)serialization for datasets.
//!
//! SQuAD and TriviaQA ship as JSON; reproducing their loaders means a
//! JSON codec. The build environment cannot fetch `serde_json`, so this
//! module carries a small hand-rolled codec for the one schema it owns
//! (flat examples inside a versioned envelope). The on-disk format is
//! plain JSON, readable by any standard tool.

use crate::{Dataset, DatasetKind, Domain, QaExample, Split};
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

/// Schema version written into every file.
const SCHEMA_VERSION: u32 = 1;

/// Errors from dataset I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Malformed JSON or schema mismatch.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Write a dataset as JSON.
pub fn save_json(dataset: &Dataset, path: &Path) -> Result<(), IoError> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    writer.write_all(encode(dataset).as_bytes())?;
    Ok(())
}

/// Load a dataset written by [`save_json`].
pub fn load_json(path: &Path) -> Result<Dataset, IoError> {
    let mut file = File::open(path)?;
    let mut text = String::new();
    file.read_to_string(&mut text)?;
    decode(&text)
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn encode(dataset: &Dataset) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"version\":");
    out.push_str(&SCHEMA_VERSION.to_string());
    out.push_str(",\"kind\":");
    push_json_string(&mut out, kind_tag(dataset.kind));
    out.push_str(",\"train\":");
    encode_split(&mut out, &dataset.train);
    out.push_str(",\"dev\":");
    encode_split(&mut out, &dataset.dev);
    out.push('}');
    out
}

fn encode_split(out: &mut String, split: &Split) {
    out.push('[');
    for (i, ex) in split.examples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":");
        push_json_string(out, &ex.id);
        out.push_str(",\"question\":");
        push_json_string(out, &ex.question);
        out.push_str(",\"context\":");
        push_json_string(out, &ex.context);
        out.push_str(",\"answer\":");
        push_json_string(out, &ex.answer);
        out.push_str(",\"aliases\":[");
        for (j, a) in ex.aliases.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_json_string(out, a);
        }
        out.push_str("],\"answerable\":");
        out.push_str(if ex.answerable { "true" } else { "false" });
        out.push_str(",\"domain\":");
        push_json_string(out, domain_tag(ex.domain));
        out.push('}');
    }
    out.push(']');
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn kind_tag(kind: DatasetKind) -> &'static str {
    match kind {
        DatasetKind::Squad11 => "Squad11",
        DatasetKind::Squad20 => "Squad20",
        DatasetKind::TriviaWeb => "TriviaWeb",
        DatasetKind::TriviaWiki => "TriviaWiki",
    }
}

fn domain_tag(d: Domain) -> &'static str {
    match d {
        Domain::Sports => "Sports",
        Domain::Music => "Music",
        Domain::History => "History",
        Domain::Geography => "Geography",
        Domain::Science => "Science",
    }
}

// ---------------------------------------------------------------------------
// Decoding: a tiny recursive-descent JSON parser plus schema mapping.
// ---------------------------------------------------------------------------

/// A parsed JSON value (only the shapes the schema needs).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> IoError {
        IoError::Format(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), IoError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, IoError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, IoError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn number(&mut self) -> Result<Json, IoError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'
            )
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    /// Four hex digits of a `\u` escape, advancing past them.
    fn hex4(&mut self) -> Result<u32, IoError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.err("malformed \\u escape"))?;
        self.pos += 4;
        Ok(hex)
    }

    fn string(&mut self) -> Result<String, IoError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let unit = self.hex4()?;
                            // UTF-16 surrogate pairs: a high surrogate
                            // must be followed by `\uDC00..=\uDFFF`.
                            let code = if (0xd800..=0xdbff).contains(&unit) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xdc00..=0xdfff).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00)
                            } else {
                                unit
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-align to the char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, IoError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, IoError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn decode(text: &str) -> Result<Dataset, IoError> {
    let mut parser = Parser::new(text);
    let root = parser.value()?;
    let version = match root.get("version") {
        Some(Json::Num(v)) => *v as u32,
        _ => return Err(IoError::Format("missing version".into())),
    };
    if version != SCHEMA_VERSION {
        return Err(IoError::Format(format!(
            "unsupported schema version {version} (expected {SCHEMA_VERSION})"
        )));
    }
    let kind = match root.get("kind").and_then(Json::as_str) {
        Some("Squad11") => DatasetKind::Squad11,
        Some("Squad20") => DatasetKind::Squad20,
        Some("TriviaWeb") => DatasetKind::TriviaWeb,
        Some("TriviaWiki") => DatasetKind::TriviaWiki,
        other => return Err(IoError::Format(format!("unknown dataset kind {other:?}"))),
    };
    let train = decode_split(root.get("train"))?;
    let dev = decode_split(root.get("dev"))?;
    Ok(Dataset { kind, train, dev })
}

fn decode_split(value: Option<&Json>) -> Result<Split, IoError> {
    let Some(Json::Arr(items)) = value else {
        return Err(IoError::Format("missing split array".into()));
    };
    let examples = items
        .iter()
        .map(decode_example)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Split { examples })
}

fn decode_example(v: &Json) -> Result<QaExample, IoError> {
    let field = |key: &str| -> Result<String, IoError> {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| IoError::Format(format!("missing string field {key:?}")))
    };
    let aliases = match v.get("aliases") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|a| {
                a.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| IoError::Format("non-string alias".into()))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err(IoError::Format("missing aliases".into())),
    };
    let answerable = match v.get("answerable") {
        Some(Json::Bool(b)) => *b,
        _ => return Err(IoError::Format("missing answerable".into())),
    };
    let domain = match v.get("domain").and_then(Json::as_str) {
        Some("Sports") => Domain::Sports,
        Some("Music") => Domain::Music,
        Some("History") => Domain::History,
        Some("Geography") => Domain::Geography,
        Some("Science") => Domain::Science,
        other => return Err(IoError::Format(format!("unknown domain {other:?}"))),
    };
    Ok(QaExample {
        id: field("id")?,
        question: field("question")?,
        context: field("context")?,
        answer: field("answer")?,
        aliases,
        answerable,
        domain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};
    use crate::DatasetKind;

    #[test]
    fn roundtrip_preserves_dataset() {
        let ds = generate(DatasetKind::Squad11, GeneratorConfig::tiny(23));
        let dir = std::env::temp_dir();
        let path = dir.join("gced_roundtrip_test.json");
        save_json(&ds, &path).unwrap();
        let loaded = load_json(&path).unwrap();
        assert_eq!(ds, loaded);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_json(Path::new("/nonexistent/gced.json")).unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
        assert!(err.to_string().contains("io error"));
    }

    #[test]
    fn load_malformed_json_errors() {
        let dir = std::env::temp_dir();
        let path = dir.join("gced_malformed_test.json");
        std::fs::write(&path, b"{not json").unwrap();
        let err = load_json(&path).unwrap_err();
        assert!(matches!(err, IoError::Format(_)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn version_mismatch_errors() {
        let ds = generate(
            DatasetKind::Squad11,
            GeneratorConfig {
                train: 16,
                dev: 16,
                seed: 1,
            },
        );
        let json = encode(&ds).replacen("\"version\":1", "\"version\":999", 1);
        let dir = std::env::temp_dir();
        let path = dir.join("gced_version_test.json");
        std::fs::write(&path, json).unwrap();
        let err = load_json(&path).unwrap_err();
        assert!(err.to_string().contains("version"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        // "😀" = 😀 — produced by any ensure_ascii JSON writer.
        let mut parser = Parser::new("\"a \\ud83d\\ude00 b\"");
        assert_eq!(parser.string().unwrap(), "a \u{1f600} b");
        // Unpaired high surrogate is rejected, not mis-decoded.
        let mut bad = Parser::new("\"\\ud83d x\"");
        assert!(bad.string().is_err());
        let mut bad2 = Parser::new("\"\\ud83d\\u0041\"");
        assert!(bad2.string().is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let mut s = String::new();
        push_json_string(&mut s, "a \"quote\" \\ and\nnewline\ttab é");
        let mut parser = Parser::new(&s);
        assert_eq!(
            parser.string().unwrap(),
            "a \"quote\" \\ and\nnewline\ttab é"
        );
    }
}
