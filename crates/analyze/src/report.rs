//! Findings and report rendering (human text + machine JSON).
//!
//! The JSON encoder is hand-rolled (the analyzer is zero-dependency)
//! and emits keys in a fixed order with sorted findings, so a report is
//! itself a deterministic artifact — two runs over the same tree are
//! byte-identical.

/// One lint hit, pinned to a file:line span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub lint: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl Finding {
    pub fn new(lint: &'static str, file: &str, line: u32, message: String) -> Self {
        Finding {
            lint,
            file: file.to_string(),
            line,
            message,
        }
    }
}

/// The whole-tree result of an analyze run.
pub struct Report {
    /// Sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    pub suppressions_used: usize,
}

impl Report {
    /// True when the tree is clean: no findings at all. Unused
    /// suppressions are themselves findings (SUPP001), so "clean"
    /// already implies zero stale allows.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable report, one finding per line plus a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.file, f.line, f.lint, f.message
            ));
        }
        out.push_str(&format!(
            "{}: {} finding{} across {} file{} ({} suppression{} honored)\n",
            if self.clean() { "clean" } else { "FAIL" },
            self.findings.len(),
            plural(self.findings.len()),
            self.files_scanned,
            plural(self.files_scanned),
            self.suppressions_used,
            plural(self.suppressions_used),
        ));
        out
    }

    /// Machine-readable report. Schema:
    /// `{"clean":bool,"files_scanned":n,"suppressions_used":n,
    ///   "findings":[{"lint":"…","file":"…","line":n,"message":"…"}]}`
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"clean\":{},\"files_scanned\":{},\"suppressions_used\":{},\"findings\":[",
            self.clean(),
            self.files_scanned,
            self.suppressions_used
        ));
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"lint\":{},\"file\":{},\"line\":{},\"message\":{}}}",
                json_str(f.lint),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            ));
        }
        out.push_str("]}\n");
        out
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![Finding::new(
                "DET001",
                "crates/serve/src/wire.rs",
                7,
                "say \"why\"\nnewline".to_string(),
            )],
            files_scanned: 3,
            suppressions_used: 2,
        }
    }

    #[test]
    fn text_report_lists_findings_and_summary() {
        let r = sample();
        let text = r.render_text();
        assert!(text.contains("crates/serve/src/wire.rs:7: [DET001]"));
        assert!(text.contains("FAIL: 1 finding across 3 files (2 suppressions honored)"));
        let clean = Report {
            findings: vec![],
            files_scanned: 1,
            suppressions_used: 0,
        };
        assert!(clean.clean());
        assert!(clean.render_text().starts_with("clean: 0 findings"));
    }

    #[test]
    fn json_report_escapes_and_is_stable() {
        let j = sample().render_json();
        assert_eq!(
            j,
            "{\"clean\":false,\"files_scanned\":3,\"suppressions_used\":2,\
             \"findings\":[{\"lint\":\"DET001\",\"file\":\"crates/serve/src/wire.rs\",\
             \"line\":7,\"message\":\"say \\\"why\\\"\\nnewline\"}]}\n"
        );
        // Determinism: rendering twice is byte-identical.
        assert_eq!(j, sample().render_json());
    }

    #[test]
    fn json_escapes_control_chars() {
        assert_eq!(json_str("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(json_str("tab\there"), "\"tab\\there\"");
    }
}
