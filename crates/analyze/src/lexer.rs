//! Hand-rolled token-level Rust lexer.
//!
//! The lint pass needs exactly one guarantee from this module: a
//! keyword, method name, or operator that appears **inside a string
//! literal or a comment must never be mistaken for code** (and vice
//! versa — a `// SAFETY:` comment must be seen *as* a comment). That
//! means faithfully handling the constructs that break naive scanners:
//!
//! * raw strings `r"…"` / `r#"…"#` (any number of hashes, no escapes),
//!   byte strings `b"…"` / `br#"…"#`, and C strings `c"…"`;
//! * nested block comments `/* outer /* inner */ still out */`;
//! * lifetimes (`'a`, `'static`) vs char literals (`'x'`, `'\n'`,
//!   `'\u{1F600}'`) vs loop labels;
//! * raw identifiers (`r#match`).
//!
//! Everything else is deliberately coarse: keywords are just idents,
//! multi-char operators are emitted as single-char puncts (the lint
//! pass matches adjacent tokens), and numeric literals only need to not
//! swallow their neighbours. Line numbers are 1-based and attached to
//! every token so findings carry `file:line` spans.

/// Token classes the lint pass distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// String literal of any flavour (plain, raw, byte, C).
    Str,
    /// Numeric literal.
    Num,
    /// Single punctuation character.
    Punct,
    /// `// …` comment (including `///` and `//!`).
    LineComment,
    /// `/* … */` comment (nesting handled), including doc forms.
    BlockComment,
}

/// One lexed token: kind, verbatim text, and 1-based starting line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True for the comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Lex `src` into a token stream. Never fails: malformed input degrades
/// to best-effort tokens (an unterminated string runs to end of file),
/// which is the right behaviour for a linter that must not crash on the
/// code it is criticising.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        cs: src.chars().collect(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    cs: Vec<char>,
    i: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.cs.get(self.i + ahead).copied()
    }

    /// Advance one char, tracking newlines.
    fn bump(&mut self) -> Option<char> {
        let c = self.cs.get(self.i).copied();
        if let Some(c) = c {
            if c == '\n' {
                self.line += 1;
            }
            self.i += 1;
        }
        c
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32) {
        let text: String = self.cs[start..self.i].iter().collect();
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if c == '"' {
                self.string(0);
            } else if c == '\'' {
                self.lifetime_or_char();
            } else if c.is_ascii_digit() {
                self.number();
            } else if c == '_' || c.is_alphabetic() {
                self.ident_or_prefixed_literal();
            } else {
                let (start, line) = (self.i, self.line);
                self.bump();
                self.push(TokKind::Punct, start, line);
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let (start, line) = (self.i, self.line);
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        self.push(TokKind::LineComment, start, line);
    }

    /// Block comments nest in Rust: track depth until it returns to 0.
    fn block_comment(&mut self) {
        let (start, line) = (self.i, self.line);
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 && self.peek(0).is_some() {
            if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        self.push(TokKind::BlockComment, start, line);
    }

    /// A plain (escaped) string body; the opening quote is at `self.i`.
    /// `start_back` is how many prefix chars (`b`, `c`) precede it.
    fn string(&mut self, start_back: usize) {
        let (start, line) = (self.i - start_back, self.line);
        self.bump(); // opening '"'
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.bump();
                self.bump(); // the escaped char (any, incl. '"')
            } else if c == '"' {
                self.bump();
                break;
            } else {
                self.bump();
            }
        }
        self.push(TokKind::Str, start, line);
    }

    /// A raw string body `r##"…"##`; `self.i` sits on the opening `"`,
    /// `hashes` hashes follow the closing quote, `start_back` covers the
    /// `r`/`br`/`cr` prefix plus the opening hashes.
    fn raw_string(&mut self, hashes: usize, start_back: usize) {
        let (start, line) = (self.i - start_back, self.line);
        self.bump(); // opening '"'
        'scan: while let Some(c) = self.peek(0) {
            if c == '"' {
                // A closing quote counts only when followed by `hashes`
                // hashes — otherwise it is literal text.
                for h in 0..hashes {
                    if self.peek(1 + h) != Some('#') {
                        self.bump();
                        continue 'scan;
                    }
                }
                self.bump();
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            self.bump();
        }
        self.push(TokKind::Str, start, line);
    }

    /// `'` starts either a lifetime/label or a char literal. The rule:
    /// `'\…` is always a char; `'X'` (quote two ahead) is a char;
    /// anything else (`'a`, `'static`, `'outer:`) is a lifetime.
    fn lifetime_or_char(&mut self) {
        let (start, line) = (self.i, self.line);
        if self.peek(1) == Some('\\') {
            self.bump(); // '
            self.bump(); // backslash
            self.bump(); // escaped char (or 'u' of \u{…})
            while let Some(c) = self.peek(0) {
                self.bump();
                if c == '\'' {
                    break;
                }
            }
            self.push(TokKind::Char, start, line);
        } else if self.peek(1).is_some() && self.peek(2) == Some('\'') && self.peek(1) != Some('\'')
        {
            self.bump();
            self.bump();
            self.bump();
            self.push(TokKind::Char, start, line);
        } else {
            self.bump(); // '
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, start, line);
        }
    }

    /// Good enough for a linter: consume digits, underscores, ident
    /// chars (type suffixes, hex), a decimal point (but not `..`), and
    /// exponent signs directly after `e`/`E`.
    fn number(&mut self) {
        let (start, line) = (self.i, self.line);
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                let was_exp = c == 'e' || c == 'E';
                self.bump();
                if was_exp && matches!(self.peek(0), Some('+') | Some('-')) {
                    self.bump();
                }
            } else if c == '.' && self.peek(1) != Some('.') {
                // `0.5` continues the number; `0..n` stops before `..`.
                if matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                    self.bump();
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        self.push(TokKind::Num, start, line);
    }

    /// Idents, keywords, raw identifiers — and the literal prefixes that
    /// start with ident chars: `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`,
    /// `b'x'`, `c"…"`, `cr#"…"#`.
    fn ident_or_prefixed_literal(&mut self) {
        let c = self.peek(0).expect("caller checked");
        // Literal prefixes.
        if c == 'r' || c == 'b' || c == 'c' {
            let mut j = 1;
            if (c == 'b' || c == 'c') && self.peek(1) == Some('r') {
                j = 2;
            }
            let raw = c == 'r' || j == 2;
            let mut hashes = 0;
            while raw && self.peek(j + hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek(j + hashes) == Some('"') && (raw || hashes == 0) {
                for _ in 0..j + hashes {
                    self.bump();
                }
                if raw {
                    self.raw_string(hashes, j + hashes);
                } else {
                    self.string(j);
                }
                return;
            }
            if c == 'b' && self.peek(1) == Some('\'') {
                // Byte char literal b'x' / b'\n': lex the quoted part,
                // then widen the token to include the prefix.
                self.bump();
                let before = self.out.len();
                self.lifetime_or_char();
                if self.out.len() > before {
                    let t = self.out.last_mut().expect("just pushed");
                    t.text.insert(0, 'b');
                    t.kind = TokKind::Char;
                }
                return;
            }
            // Raw identifier r#match: consume the hash and fall through.
            if c == 'r'
                && hashes == 1
                && matches!(self.peek(2), Some(x) if x == '_' || x.is_alphabetic())
            {
                self.bump(); // r
                self.bump(); // #
            }
        }
        let (start, line) = (self.i.min(self.cs.len()), self.line);
        // For raw idents the prefix was already consumed; rebuild text
        // from the remaining ident chars (prefix omitted on purpose: the
        // lint pass should see `r#match` as `match`-the-ident, never as
        // the keyword — close enough either way).
        while let Some(ch) = self.peek(0) {
            if ch == '_' || ch.is_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, start, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn plain_tokens_and_lines() {
        let toks = lex("fn main() {\n    let x = 1;\n}\n");
        let idents: Vec<(&str, u32)> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text.as_str(), t.line))
            .collect();
        assert_eq!(idents, vec![("fn", 1), ("main", 1), ("let", 2), ("x", 2)]);
    }

    #[test]
    fn raw_string_swallows_quotes_and_comment_markers() {
        let toks = kinds(r####"let s = r#"quote " and // and /*"# ; next"####);
        let strs: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].starts_with("r#\"") && strs[0].ends_with("\"#"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "next"));
        assert!(!toks.iter().any(|(k, _)| *k == TokKind::LineComment));
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        let toks = kinds("/* a /* b */ c */ fn");
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[0].1, "/* a /* b */ c */");
        assert_eq!(toks[1], (TokKind::Ident, "fn".to_string()));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; loop {} }");
        let lifetimes: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Char)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(chars, vec!["'x'", "'\\n'"]);
    }

    #[test]
    fn byte_and_c_strings() {
        let toks = kinds(r##"let a = b"bytes"; let b2 = br#"raw"#; let c = c"cstr"; b'\n'"##);
        let strs: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(strs.len(), 3, "strings found: {strs:?}");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Char && t == "b'\\n'"));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = kinds("for i in 0..10 { let x = 1.5e-3; }");
        let nums: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e-3"]);
    }

    #[test]
    fn unterminated_string_does_not_hang() {
        let toks = kinds("let s = \"runs to eof");
        assert_eq!(toks.last().unwrap().0, TokKind::Str);
    }

    #[test]
    fn raw_identifier() {
        let toks = kinds("let r#match = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "match"));
    }
}
