//! Deterministic workspace walk: collect every `.rs` file under a root,
//! sorted by workspace-relative path, skipping build output and VCS
//! metadata. Sorted order means the report (and its JSON artifact) is
//! byte-stable across filesystems and readdir orders.

use std::fs;
use std::path::{Path, PathBuf};

/// Directories never scanned, at any depth.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "node_modules"];

/// All `.rs` files under `root`, as (relative-path-with-`/`, absolute)
/// pairs, sorted by relative path.
pub fn rust_files(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut out = Vec::new();
    collect(root, root, &mut out)?;
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("analyze: cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("analyze: readdir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let ty = entry
            .file_type()
            .map_err(|e| format!("analyze: stat {}: {e}", path.display()))?;
        if ty.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect(root, &path, out)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| format!("analyze: {} escapes root", path.display()))?
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    #[test]
    fn walk_is_sorted_and_skips_target() {
        let dir = std::env::temp_dir().join(format!("gced-analyze-walk-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("src")).unwrap();
        fs::create_dir_all(dir.join("target/debug")).unwrap();
        fs::create_dir_all(dir.join("crates/a/src")).unwrap();
        fs::write(dir.join("src/main.rs"), "fn main() {}\n").unwrap();
        fs::write(dir.join("crates/a/src/lib.rs"), "\n").unwrap();
        fs::write(dir.join("target/debug/gen.rs"), "junk\n").unwrap();
        fs::write(dir.join("README.md"), "not rust\n").unwrap();
        let files = rust_files(&dir).unwrap();
        let rels: Vec<&str> = files.iter().map(|(r, _)| r.as_str()).collect();
        assert_eq!(rels, vec!["crates/a/src/lib.rs", "src/main.rs"]);
        let _ = fs::remove_dir_all(&dir);
    }
}
