//! What is linted where: the lint catalog and the path policies that
//! encode the workspace's real invariants.
//!
//! Paths are workspace-relative with `/` separators (the walker
//! normalizes them). Policies are deliberately data, not code: each is
//! a list of path prefixes/suffixes so the README table, this module,
//! and the tests stay trivially in sync.

/// One lint: stable ID, one-line description of the guarded invariant.
pub struct Lint {
    pub id: &'static str,
    pub invariant: &'static str,
}

/// The full catalog, in report order.
pub const LINTS: &[Lint] = &[
    Lint {
        id: "DET001",
        invariant: "no HashMap/HashSet iteration order may reach rendered output \
                    (wire bytes, cache artifacts, eval JSON, metrics) unless sorted first",
    },
    Lint {
        id: "DET002",
        invariant: "float accumulation in gced-nn must route through the fixed 8-lane \
                    tree (kernels.rs) or the scalar oracle (reference.rs)",
    },
    Lint {
        id: "DET003",
        invariant: "no wall-clock reads (Instant::now / SystemTime) outside the \
                    allowlisted timing modules — result paths must be replayable",
    },
    Lint {
        id: "DET004",
        invariant: "no ambient nondeterminism (thread identity, OS entropy) off the \
                    seeded-rng path in non-test code",
    },
    Lint {
        id: "SAFE001",
        invariant: "every `unsafe` block / fn / impl is preceded by a SAFETY comment",
    },
    Lint {
        id: "SAFE002",
        invariant: "SIMD intrinsics (`_mm*` / `__m*`) only inside #[target_feature] \
                    functions",
    },
    Lint {
        id: "SUPP001",
        invariant: "every `// gced-allow(...)` suppression must suppress something",
    },
    Lint {
        id: "SUPP002",
        invariant: "suppressions must name a known lint and give a reason",
    },
];

/// True if `id` names a catalog lint.
pub fn known_lint(id: &str) -> bool {
    LINTS.iter().any(|l| l.id == id)
}

/// Test-like code: integration tests, benches, examples, and anything
/// under a `tests/` or fixture directory. The DET lints don't apply
/// there (tests may freely measure time or iterate maps); the SAFE
/// lints still do (unsafe is unsafe everywhere).
pub fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.starts_with("benches/")
        || path.starts_with("examples/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
}

/// DET001 scope: the output/serialization path modules, where an
/// unsorted map iteration becomes nondeterministic *bytes* — the wire
/// format, the fit-cache artifact, eval JSON/tables, /metrics
/// rendering, the response cache / evidence store (whose eviction scan
/// order decides which stored bytes survive), and the interchange
/// (`to_parts`/`idf_parts`) layers that feed the artifact encoder.
pub fn det001_in_scope(path: &str) -> bool {
    const SCOPE: &[&str] = &[
        "crates/serve/src/wire.rs",
        "crates/store/src/lib.rs",
        "crates/serve/src/metrics.rs",
        "crates/core/src/cache.rs",
        "crates/datasets/src/json.rs",
        "crates/eval/src/shard.rs",
        "crates/eval/src/tables.rs",
        "crates/eval/src/experiments.rs",
        "crates/lm/src/lib.rs",
        "crates/qa/src/model.rs",
    ];
    SCOPE.contains(&path)
}

/// DET002 scope: everything in `gced-nn` **except** the two modules
/// that are allowed to define accumulation order — the fixed-tree
/// kernels and the paper-literal scalar oracle.
pub fn det002_in_scope(path: &str) -> bool {
    path.starts_with("crates/nn/src/")
        && path != "crates/nn/src/kernels.rs"
        && path != "crates/nn/src/reference.rs"
}

/// DET003 allowlist: modules whose entire job is timing — the batcher's
/// flush deadlines, the HTTP read-deadline clock, the gced-obs clock
/// (the single monotonic-tick source every span/stopwatch reads
/// through), the criterion compat shim, and the bench harness.
/// Everywhere else a wall-clock read in a result path would break
/// replayability.
pub fn det003_allowed(path: &str) -> bool {
    const ALLOW: &[&str] = &[
        "crates/serve/src/batch.rs",
        "crates/serve/src/http.rs",
        "crates/obs/src/clock.rs",
    ];
    ALLOW.contains(&path)
        || path.starts_with("crates/compat/criterion/")
        || path.starts_with("crates/bench/")
}

/// DET004 allowlist: the seeded-rng compat crate itself.
pub fn det004_allowed(path: &str) -> bool {
    path.starts_with("crates/compat/rand/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_ids_are_unique_and_known() {
        for l in LINTS {
            assert!(known_lint(l.id));
            assert_eq!(LINTS.iter().filter(|o| o.id == l.id).count(), 1);
        }
        assert!(!known_lint("DET999"));
    }

    #[test]
    fn path_policies() {
        assert!(is_test_path("crates/nn/tests/parity.rs"));
        assert!(is_test_path("tests/serve_parity.rs"));
        assert!(is_test_path("examples/quickstart.rs"));
        assert!(!is_test_path("crates/nn/src/kernels.rs"));

        assert!(det001_in_scope("crates/serve/src/wire.rs"));
        assert!(det001_in_scope("crates/store/src/lib.rs"));
        assert!(!det001_in_scope("crates/serve/src/batch.rs"));

        assert!(det002_in_scope("crates/nn/src/attention.rs"));
        assert!(!det002_in_scope("crates/nn/src/kernels.rs"));
        assert!(!det002_in_scope("crates/nn/src/reference.rs"));
        assert!(!det002_in_scope("crates/core/src/ase.rs"));

        assert!(det003_allowed("crates/serve/src/batch.rs"));
        assert!(det003_allowed("crates/compat/criterion/src/lib.rs"));
        assert!(det003_allowed("crates/obs/src/clock.rs"));
        assert!(!det003_allowed("crates/obs/src/lib.rs"));
        assert!(!det003_allowed("crates/core/src/lib.rs"));

        assert!(det004_allowed("crates/compat/rand/src/lib.rs"));
        assert!(!det004_allowed("crates/qa/src/model.rs"));
    }
}
