//! gced-analyze: determinism & unsafe-hygiene static analysis for the
//! gced workspace.
//!
//! The repo's value proposition is bit-exactness — served == offline
//! bytes, N-shard == 1-shard merges, blocked kernels == scalar oracle
//! bitwise. The hazards that silently break those pins (hash iteration
//! order reaching rendered output, float accumulation outside the
//! fixed-tree kernels, wall-clock reads in result paths, uncommented
//! `unsafe`) are what this crate scans for, as a token-level pass over
//! the source tree. See [`policy::LINTS`] for the catalog and the
//! README "Static analysis & sanitizers" section for the user guide.
//!
//! Zero dependencies by construction: the analyzer must never be broken
//! by — or bias — the code it audits, and it holds itself to its own
//! rules (BTreeMap/Vec only, no clocks, sorted walks).

pub mod lexer;
pub mod lints;
pub mod policy;
pub mod report;
pub mod walk;

use std::path::Path;

pub use report::{Finding, Report};

/// Scan every `.rs` file under `root` and return the combined report.
/// Findings are sorted by (file, line, lint); the walk itself is
/// sorted, so the report is deterministic.
pub fn analyze(root: &Path) -> Result<Report, String> {
    let files = walk::rust_files(root)?;
    let mut findings = Vec::new();
    let mut suppressions_used = 0usize;
    let files_scanned = files.len();
    for (rel, abs) in files {
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| format!("analyze: cannot read {}: {e}", abs.display()))?;
        let outcome = lints::check_file(&rel, &src);
        findings.extend(outcome.findings);
        suppressions_used += outcome.suppressions_used;
    }
    // Per-file results are already (line, lint)-sorted; the walk is
    // path-sorted, so a stable sort by file yields (file, line, lint).
    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(Report {
        findings,
        files_scanned,
        suppressions_used,
    })
}
