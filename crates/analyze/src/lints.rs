//! The lint pass: token-level checks encoding the workspace invariants.
//!
//! Every check works on the token stream from [`crate::lexer`] — no
//! type information, by design. Where a check cannot be precise at the
//! token level (is this `+=` a float?), it is *scoped* by
//! [`crate::policy`] to the modules where the hazard is real, and the
//! escape hatch is an inline suppression:
//!
//! ```text
//! // gced-allow(DET002): elementwise add, one rounding per element
//! ```
//!
//! A suppression must name a catalog lint, give a reason, and sit on
//! the finding's line or the line above. Suppressions that suppress
//! nothing are findings themselves (SUPP001), so stale allows cannot
//! accumulate; malformed ones are SUPP002. The DET lints skip test
//! code (test-path files and `#[cfg(test)]` modules); the SAFE lints
//! apply everywhere.

use crate::lexer::{lex, Tok, TokKind};
use crate::policy;
use crate::report::Finding;

/// Result of checking one file.
pub struct FileOutcome {
    pub findings: Vec<Finding>,
    pub suppressions_used: usize,
}

/// Run every lint over one file. `path` must be workspace-relative with
/// `/` separators — the path policies key on it.
pub fn check_file(path: &str, src: &str) -> FileOutcome {
    let toks = lex(src);
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let ctx = Ctx {
        path,
        toks: &toks,
        code: &code,
        test_file: policy::is_test_path(path),
        test_ranges: cfg_test_line_ranges(&toks, &code),
    };

    let mut raw: Vec<Finding> = Vec::new();
    det001(&ctx, &mut raw);
    det002(&ctx, &mut raw);
    det003(&ctx, &mut raw);
    det004(&ctx, &mut raw);
    safe001(&ctx, &mut raw);
    safe002(&ctx, &mut raw);

    // Apply inline suppressions, then report the stale/malformed ones.
    let (mut suppressions, mut findings) = parse_suppressions(path, &toks);
    let mut used = 0usize;
    'f: for f in raw {
        for s in suppressions.iter_mut() {
            if s.id == f.lint && (s.line == f.line || s.line + 1 == f.line) {
                s.used = true;
                used += 1;
                continue 'f;
            }
        }
        findings.push(f);
    }
    for s in &suppressions {
        if !s.used {
            findings.push(Finding::new(
                "SUPP001",
                path,
                s.line,
                format!(
                    "unused suppression: no {} finding on this or the next line — \
                     remove the stale `gced-allow`",
                    s.id
                ),
            ));
        }
    }
    findings.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    FileOutcome {
        findings,
        suppressions_used: used,
    }
}

struct Ctx<'a> {
    path: &'a str,
    toks: &'a [Tok],
    /// Indices into `toks` of the non-comment tokens.
    code: &'a [usize],
    test_file: bool,
    /// Line ranges of `#[cfg(test)] mod … { … }` bodies.
    test_ranges: Vec<(u32, u32)>,
}

impl Ctx<'_> {
    fn tok(&self, ci: usize) -> &Tok {
        &self.toks[self.code[ci]]
    }

    fn text(&self, ci: usize) -> &str {
        &self.tok(ci).text
    }

    fn is(&self, ci: usize, text: &str) -> bool {
        ci < self.code.len() && self.text(ci) == text
    }

    fn is_ident(&self, ci: usize) -> bool {
        ci < self.code.len() && self.tok(ci).kind == TokKind::Ident
    }

    /// DET lints don't apply to test code.
    fn in_test_code(&self, line: u32) -> bool {
        self.test_file
            || self
                .test_ranges
                .iter()
                .any(|&(s, e)| s <= line && line <= e)
    }
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

struct Suppression {
    line: u32,
    id: String,
    used: bool,
}

/// Doc comments are documentation, not instructions: a lint example in
/// a `///` block must not register as a live suppression.
fn is_doc_comment(text: &str) -> bool {
    text.starts_with("///")
        || text.starts_with("//!")
        || text.starts_with("/**")
        || text.starts_with("/*!")
}

/// Extract `gced-allow(ID): reason` markers from plain comments.
/// Malformed markers (unknown lint, missing reason) become SUPP002
/// findings.
fn parse_suppressions(path: &str, toks: &[Tok]) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut findings = Vec::new();
    for t in toks
        .iter()
        .filter(|t| t.is_comment() && !is_doc_comment(&t.text))
    {
        let mut rest = t.text.as_str();
        while let Some(at) = rest.find("gced-allow(") {
            rest = &rest[at + "gced-allow(".len()..];
            let Some(close) = rest.find(')') else {
                findings.push(Finding::new(
                    "SUPP002",
                    path,
                    t.line,
                    "malformed suppression: missing `)` after gced-allow(".to_string(),
                ));
                break;
            };
            let id = rest[..close].trim().to_string();
            let after = &rest[close + 1..];
            let reason_ok = after
                .trim_start()
                .strip_prefix(':')
                .is_some_and(|r| !r.trim().is_empty());
            if !policy::known_lint(&id) {
                findings.push(Finding::new(
                    "SUPP002",
                    path,
                    t.line,
                    format!("suppression names unknown lint {id:?}"),
                ));
            } else if !reason_ok {
                findings.push(Finding::new(
                    "SUPP002",
                    path,
                    t.line,
                    format!("suppression of {id} has no reason — write `// gced-allow({id}): why this is sound`"),
                ));
            } else {
                sups.push(Suppression {
                    line: t.line,
                    id,
                    used: false,
                });
            }
            rest = after;
        }
    }
    (sups, findings)
}

// ---------------------------------------------------------------------------
// #[cfg(test)] region detection
// ---------------------------------------------------------------------------

/// Line ranges covered by `#[cfg(test)] mod … { … }` bodies.
fn cfg_test_line_ranges(toks: &[Tok], code: &[usize]) -> Vec<(u32, u32)> {
    let text = |ci: usize| toks[code[ci]].text.as_str();
    let mut out = Vec::new();
    let mut ci = 0;
    while ci + 4 < code.len() {
        // `#` `[` `cfg` `(` … `test` … `)` `]`
        if text(ci) == "#" && text(ci + 1) == "[" && text(ci + 2) == "cfg" {
            let Some(attr_end) = matching(toks, code, ci + 1, "[", "]") else {
                break;
            };
            let has_test = (ci + 3..attr_end).any(|k| text(k) == "test");
            let mut j = attr_end + 1;
            // Skip any further attributes between the cfg and the item.
            while j + 1 < code.len() && text(j) == "#" && text(j + 1) == "[" {
                match matching(toks, code, j + 1, "[", "]") {
                    Some(e) => j = e + 1,
                    None => break,
                }
            }
            let is_mod = (j..code.len().min(j + 3)).any(|k| text(k) == "mod");
            if has_test && is_mod {
                // Find the body brace (a `mod name;` has none).
                let mut b = j;
                while b < code.len() && text(b) != "{" && text(b) != ";" {
                    b += 1;
                }
                if b < code.len() && text(b) == "{" {
                    if let Some(close) = matching(toks, code, b, "{", "}") {
                        out.push((toks[code[ci]].line, toks[code[close]].line));
                        ci = close + 1;
                        continue;
                    }
                }
            }
            ci = attr_end + 1;
            continue;
        }
        ci += 1;
    }
    out
}

/// Index of the token matching the opener at `open_ci` (depth-counted).
fn matching(
    toks: &[Tok],
    code: &[usize],
    open_ci: usize,
    open: &str,
    close: &str,
) -> Option<usize> {
    let text = |ci: usize| toks[code[ci]].text.as_str();
    let mut depth = 0usize;
    for ci in open_ci..code.len() {
        if text(ci) == open {
            depth += 1;
        } else if text(ci) == close {
            depth -= 1;
            if depth == 0 {
                return Some(ci);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// DET001 — map iteration on output paths
// ---------------------------------------------------------------------------

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];

fn det001(ctx: &Ctx, out: &mut Vec<Finding>) {
    if !policy::det001_in_scope(ctx.path) {
        return;
    }
    let names = map_binding_names(ctx);
    if names.is_empty() {
        return;
    }
    let mut candidates: Vec<(usize, String)> = Vec::new();
    for ci in 0..ctx.code.len() {
        // `NAME.iter()` / `self.NAME.keys()` …
        if ctx.is_ident(ci)
            && ITER_METHODS.contains(&ctx.text(ci))
            && ci >= 2
            && ctx.is(ci.wrapping_sub(1), ".")
            && ctx.is(ci + 1, "(")
        {
            let recv = ci - 2;
            if ctx.is_ident(recv) && names.contains(&ctx.text(recv).to_string()) {
                // Only bare `NAME` and `self.NAME` are the file's map
                // binding; `other.NAME` is some other struct's field
                // (e.g. the sorted Vec twin in a parts struct).
                let field_of_other =
                    recv >= 2 && ctx.is(recv - 1, ".") && !ctx.is(recv - 2, "self");
                if !field_of_other {
                    candidates.push((ci, format!("{}.{}()", ctx.text(recv), ctx.text(ci))));
                }
            }
        }
        // `for x in &NAME {` / `for (k, v) in NAME {`
        if ctx.is(ci, "in") {
            let mut j = ci + 1;
            while ctx.is(j, "&") || ctx.is(j, "mut") {
                j += 1;
            }
            if ctx.is(j, "self") && ctx.is(j + 1, ".") {
                j += 2;
            }
            if ctx.is_ident(j) && names.contains(&ctx.text(j).to_string()) && ctx.is(j + 1, "{") {
                candidates.push((j, format!("for … in {}", ctx.text(j))));
            }
        }
    }
    for (ci, what) in candidates {
        let line = ctx.tok(ci).line;
        if ctx.in_test_code(line) || sorted_nearby(ctx, ci) {
            continue;
        }
        out.push(Finding::new(
            "DET001",
            ctx.path,
            line,
            format!(
                "`{what}` iterates a HashMap/HashSet on an output/serialization path; \
                 hash order would reach rendered bytes — sort first (collect + sort, \
                 or collect into a BTreeMap/BTreeSet)"
            ),
        ));
    }
}

/// Idents bound to a `HashMap`/`HashSet` anywhere in the file: `let m =
/// HashMap::new()`, annotations `m: HashMap<…>`, fn params, struct
/// fields. Flow-insensitive and file-local, which is exactly as sharp
/// as a token-level pass can be — and sharp enough for these modules.
fn map_binding_names(ctx: &Ctx) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for ci in 0..ctx.code.len() {
        if !(ctx.is(ci, "HashMap") || ctx.is(ci, "HashSet")) {
            continue;
        }
        // Walk back over `std :: collections ::`, `&`, `mut`, and the
        // annotation colon to the bound name.
        let mut k = ci;
        while k > 0 {
            k -= 1;
            let t = ctx.text(k);
            if t == ":" || t == "&" || t == "mut" || t == "std" || t == "collections" {
                continue;
            }
            if ctx.is_ident(k) && t != "let" && t != "in" {
                names.push(t.to_string());
            } else if t == "=" && k > 0 && ctx.is_ident(k - 1) {
                // `NAME = HashMap::new()`
                names.push(ctx.text(k - 1).to_string());
            }
            break;
        }
    }
    names.sort();
    names.dedup();
    names
}

/// True if the iteration feeds an ordering within the same or the next
/// statement: a `sort*` call or a collect into a `BTreeMap`/`BTreeSet`.
fn sorted_nearby(ctx: &Ctx, ci: usize) -> bool {
    let mut semis = 0;
    for j in ci..ctx.code.len().min(ci + 120) {
        let t = ctx.text(j);
        if t == ";" {
            semis += 1;
            if semis == 2 {
                return false;
            }
        } else if ctx.is_ident(j) && (t.starts_with("sort") || t == "BTreeMap" || t == "BTreeSet") {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// DET002 — float accumulation outside the kernels
// ---------------------------------------------------------------------------

fn det002(ctx: &Ctx, out: &mut Vec<Finding>) {
    if !policy::det002_in_scope(ctx.path) {
        return;
    }
    for ci in 0..ctx.code.len() {
        let line = ctx.tok(ci).line;
        if ctx.in_test_code(line) {
            continue;
        }
        if ctx.is(ci, "+") && ctx.is(ci + 1, "=") {
            out.push(Finding::new(
                "DET002",
                ctx.path,
                line,
                "raw `+=` accumulation in gced-nn outside kernels.rs/reference.rs: \
                 float reductions must route through the fixed 8-lane tree \
                 (gced_nn::kernels) or the scalar oracle, or justify why the order \
                 is pinned"
                    .to_string(),
            ));
        }
        if ctx.is_ident(ci)
            && ctx.text(ci) == "sum"
            && ci >= 1
            && ctx.is(ci - 1, ".")
            && ctx.is(ci + 1, "(")
        {
            out.push(Finding::new(
                "DET002",
                ctx.path,
                line,
                "iterator `.sum()` in gced-nn outside kernels.rs/reference.rs: \
                 route the reduction through gced_nn::kernels (e.g. kernels::dot) \
                 so the association order is the canonical 8-lane tree"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// DET003 — wall-clock reads outside timing modules
// ---------------------------------------------------------------------------

fn det003(ctx: &Ctx, out: &mut Vec<Finding>) {
    if policy::det003_allowed(ctx.path) {
        return;
    }
    for ci in 0..ctx.code.len() {
        let line = ctx.tok(ci).line;
        if ctx.in_test_code(line) {
            continue;
        }
        if ctx.is(ci, "SystemTime") {
            out.push(Finding::new(
                "DET003",
                ctx.path,
                line,
                "`SystemTime` outside the allowlisted timing modules: result paths \
                 must be replayable — derive timestamps from inputs, or move the \
                 read into a timing module"
                    .to_string(),
            ));
        }
        if ctx.is(ci, "Instant")
            && ctx.is(ci + 1, ":")
            && ctx.is(ci + 2, ":")
            && ctx.is(ci + 3, "now")
        {
            out.push(Finding::new(
                "DET003",
                ctx.path,
                line,
                "`Instant::now()` outside the allowlisted timing modules \
                 (serve::batch, serve::http, obs::clock, compat/criterion, \
                 gced-bench): a wall-clock read in a result path breaks replay"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// DET004 — ambient nondeterminism off the seeded-rng path
// ---------------------------------------------------------------------------

fn det004(ctx: &Ctx, out: &mut Vec<Finding>) {
    if policy::det004_allowed(ctx.path) {
        return;
    }
    for ci in 0..ctx.code.len() {
        let line = ctx.tok(ci).line;
        if ctx.in_test_code(line) {
            continue;
        }
        let t = if ctx.is_ident(ci) { ctx.text(ci) } else { "" };
        if t == "thread_rng" || t == "from_entropy" || t == "RandomState" {
            out.push(Finding::new(
                "DET004",
                ctx.path,
                line,
                format!(
                    "`{t}` is ambient nondeterminism: every rng in non-test code must \
                     be seeded from the experiment config (splitmix of the run seed)"
                ),
            ));
        }
        if t == "thread" && ctx.is(ci + 1, ":") && ctx.is(ci + 2, ":") && ctx.is(ci + 3, "current")
        {
            out.push(Finding::new(
                "DET004",
                ctx.path,
                line,
                "`thread::current()` identity in non-test code: scheduling-dependent \
                 values must never influence results"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// SAFE001 — SAFETY comments on unsafe
// ---------------------------------------------------------------------------

fn safe001(ctx: &Ctx, out: &mut Vec<Finding>) {
    for (pos, ci) in ctx.code.iter().enumerate() {
        let t = &ctx.toks[*ci];
        if !(t.kind == TokKind::Ident && t.text == "unsafe") {
            continue;
        }
        // Walk the FULL stream backward from this token to the previous
        // statement/block boundary, collecting comments on the way.
        // Attributes, visibility, `let x =`, `return` etc. are skipped;
        // `;`, `{`, `}` end the search.
        let mut documented = false;
        let start = ctx.code[pos];
        let lower = start.saturating_sub(300);
        for k in (lower..start).rev() {
            let p = &ctx.toks[k];
            if p.is_comment() {
                if p.text.contains("SAFETY") || p.text.contains("# Safety") {
                    documented = true;
                    break;
                }
            } else if matches!(p.text.as_str(), ";" | "{" | "}") {
                break;
            }
        }
        if !documented {
            out.push(Finding::new(
                "SAFE001",
                ctx.path,
                t.line,
                "`unsafe` without a preceding SAFETY comment: state the invariant \
                 that makes this sound (`// SAFETY: …` or a `# Safety` doc section)"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// SAFE002 — intrinsics only under #[target_feature]
// ---------------------------------------------------------------------------

fn safe002(ctx: &Ctx, out: &mut Vec<Finding>) {
    // Allowed regions: from each #[target_feature(…)] attribute through
    // the end of the following function body (signature included).
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut ci = 0;
    while ci + 2 < ctx.code.len() {
        if ctx.is(ci, "#") && ctx.is(ci + 1, "[") && ctx.is(ci + 2, "target_feature") {
            if let Some(attr_end) = matching(ctx.toks, ctx.code, ci + 1, "[", "]") {
                let mut b = attr_end + 1;
                // Walk to the fn body `{`. A `;` ends the scan (bodyless
                // declaration) only at bracket depth 0 — signatures like
                // `-> [f32; 4]` contain semicolons inside brackets.
                let mut depth = 0i32;
                while b < ctx.code.len() && !ctx.is(b, "{") {
                    if ctx.is(b, "[") {
                        depth += 1;
                    } else if ctx.is(b, "]") {
                        depth -= 1;
                    } else if ctx.is(b, ";") && depth == 0 {
                        break;
                    }
                    b += 1;
                }
                if b < ctx.code.len() && ctx.is(b, "{") {
                    if let Some(close) = matching(ctx.toks, ctx.code, b, "{", "}") {
                        regions.push((ci, close));
                        ci = close + 1;
                        continue;
                    }
                }
                ci = attr_end + 1;
                continue;
            }
        }
        ci += 1;
    }
    for pos in 0..ctx.code.len() {
        if !ctx.is_ident(pos) {
            continue;
        }
        let t = ctx.text(pos);
        if !(t.starts_with("_mm") || t.starts_with("__m")) {
            continue;
        }
        if regions.iter().any(|&(s, e)| s <= pos && pos <= e) {
            continue;
        }
        out.push(Finding::new(
            "SAFE002",
            ctx.path,
            ctx.tok(pos).line,
            format!(
                "SIMD intrinsic/type `{t}` outside a #[target_feature] function: \
                 dispatch must go through a feature-checked wrapper so the portable \
                 path stays bit-identical"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        check_file(path, src).findings
    }

    fn lints(path: &str, src: &str) -> Vec<&'static str> {
        check(path, src).into_iter().map(|f| f.lint).collect()
    }

    #[test]
    fn cfg_test_regions_cover_mod_bodies() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let toks = lex(src);
        let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
        let r = cfg_test_line_ranges(&toks, &code);
        assert_eq!(r, vec![(2, 5)]);
    }

    #[test]
    fn suppression_must_have_reason_and_known_id() {
        let src = "// gced-allow(DET003): waiting on startup is not a result path\n\
                   // gced-allow(NOPE): x\n\
                   // gced-allow(DET001)\n\
                   fn f() { let _ = 1; }\n";
        let found = lints("crates/core/src/lib.rs", src);
        // The well-formed DET003 allow (line 1) suppresses nothing ->
        // SUPP001; the other two are malformed -> SUPP002.
        assert_eq!(found, vec!["SUPP001", "SUPP002", "SUPP002"]);
    }

    #[test]
    fn doc_comment_examples_are_not_suppressions() {
        let src = "/// Suppress with `// gced-allow(DET003): reason`.\nfn f() {}\n";
        assert!(lints("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn det001_fires_and_clears() {
        let fire = "use std::collections::HashMap;\n\
                    fn render(m: &HashMap<String, u64>) -> String {\n\
                        let mut out = String::new();\n\
                        for (k, v) in m.iter() {\n\
                            out.push_str(k);\n\
                        }\n\
                        out\n\
                    }\n";
        assert_eq!(lints("crates/serve/src/wire.rs", fire), vec!["DET001"]);
        // Same content outside the output-path scope: silent.
        assert!(lints("crates/serve/src/batch.rs", fire).is_empty());
        let sorted = "use std::collections::HashMap;\n\
                      fn render(m: &HashMap<String, u64>) -> String {\n\
                          let mut kv: Vec<_> = m.iter().collect();\n\
                          kv.sort();\n\
                          String::new()\n\
                      }\n";
        assert!(lints("crates/serve/src/wire.rs", sorted).is_empty());
    }

    #[test]
    fn det001_same_named_field_of_another_struct_is_not_the_map() {
        // `parts.c3` is the sorted-Vec twin of the HashMap field `c3`;
        // only bare `c3` / `self.c3` refer to the map.
        let src = "use std::collections::HashMap;\n\
                   struct Lm { c3: HashMap<u64, u64> }\n\
                   fn rebuild(parts: Parts) -> Lm {\n\
                       Lm { c3: parts.c3.into_iter().collect() }\n\
                   }\n";
        assert!(lints("crates/lm/src/lib.rs", src).is_empty());
        let fires = "use std::collections::HashMap;\n\
                     struct Lm { c3: HashMap<u64, u64> }\n\
                     impl Lm {\n\
                         fn dump(&self) -> Vec<u64> {\n\
                             self.c3.keys().copied().collect()\n\
                         }\n\
                     }\n";
        assert_eq!(lints("crates/lm/src/lib.rs", fires), vec!["DET001"]);
    }

    #[test]
    fn det002_scoped_to_nn_outside_kernels() {
        let src = "fn acc(xs: &[f32]) -> f32 {\n    let mut s = 0.0;\n    for x in xs { s += x; }\n    s\n}\n";
        assert_eq!(lints("crates/nn/src/attention.rs", src), vec!["DET002"]);
        assert!(lints("crates/nn/src/kernels.rs", src).is_empty());
        assert!(lints("crates/nn/src/reference.rs", src).is_empty());
        assert!(lints("crates/core/src/ase.rs", src).is_empty());
        let sum = "fn s(xs: &[f32]) -> f32 { xs.iter().sum() }\n";
        assert_eq!(lints("crates/nn/src/embedding.rs", sum), vec!["DET002"]);
    }

    #[test]
    fn det003_wall_clock() {
        let src = "fn t() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(lints("crates/core/src/lib.rs", src), vec!["DET003"]);
        assert!(lints("crates/serve/src/batch.rs", src).is_empty());
        // The gced-obs tick source is THE timing module — allowed; the
        // tracer proper must go through it, so a raw read there fires.
        assert!(lints("crates/obs/src/clock.rs", src).is_empty());
        assert_eq!(lints("crates/obs/src/lib.rs", src), vec!["DET003"]);
        // Importing Instant for types is fine; only ::now() fires.
        assert!(lints("crates/core/src/lib.rs", "use std::time::Instant;\n").is_empty());
        assert_eq!(
            lints(
                "crates/core/src/lib.rs",
                "fn t() -> std::time::SystemTime { std::time::SystemTime::now() }\n"
            ),
            vec!["DET003", "DET003"]
        );
    }

    #[test]
    fn det004_ambient_nondeterminism() {
        assert_eq!(
            lints(
                "crates/qa/src/model.rs",
                "fn r() { let _ = rand::thread_rng(); }\n"
            ),
            vec!["DET004"]
        );
        assert_eq!(
            lints(
                "crates/par/src/pool.rs",
                "fn t() { let _ = std::thread::current().id(); }\n"
            ),
            vec!["DET004"]
        );
        assert!(lints(
            "crates/compat/rand/src/lib.rs",
            "fn r() { thread_rng(); }\n"
        )
        .is_empty());
        // thread::sleep and friends stay fine.
        assert!(lints(
            "crates/par/src/pool.rs",
            "fn t() { std::thread::sleep(d); }\n"
        )
        .is_empty());
    }

    #[test]
    fn det_lints_skip_test_code() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::time::Instant::now(); }\n}\n";
        assert!(lints("crates/core/src/lib.rs", src).is_empty());
        assert!(lints(
            "crates/nn/tests/parity.rs",
            "fn s(xs: &[f32]) -> f32 { let mut a = 0.0; a += xs[0]; a }\n"
        )
        .is_empty());
    }

    #[test]
    fn safe001_requires_safety_comment() {
        let bare = "fn f() { let _ = unsafe { g() }; }\n";
        assert_eq!(lints("crates/par/src/pool.rs", bare), vec!["SAFE001"]);
        let ok = "fn f() {\n    // SAFETY: g has no preconditions here.\n    let _ = unsafe { g() };\n}\n";
        assert!(lints("crates/par/src/pool.rs", ok).is_empty());
        let doc = "/// # Safety\n///\n/// Caller must check the feature.\nunsafe fn g() {}\n";
        assert!(lints("crates/par/src/pool.rs", doc).is_empty());
        // `unsafe` inside strings and comments never fires.
        let quoted = "fn f() { let s = \"unsafe\"; /* unsafe */ }\n";
        assert!(lints("crates/par/src/pool.rs", quoted).is_empty());
        // unsafe impls need the comment too.
        assert_eq!(
            lints("crates/par/src/pool.rs", "unsafe impl Send for T {}\n"),
            vec!["SAFE001"]
        );
    }

    #[test]
    fn safe002_requires_target_feature() {
        let bare = "fn f() { let z = _mm256_setzero_ps(); }\n";
        assert_eq!(lints("crates/nn/src/kernels.rs", bare), vec!["SAFE002"]);
        let ok = "/// # Safety\n/// Caller checked avx2.\n\
                  #[target_feature(enable = \"avx2\")]\n\
                  unsafe fn f(x: __m256) -> __m256 { _mm256_add_ps(x, x) }\n";
        assert!(lints("crates/nn/src/kernels.rs", ok).is_empty());
    }

    #[test]
    fn safe002_region_survives_array_types_in_signature() {
        // `-> [f32; 4]` has a `;` inside the signature: the region scan
        // must not mistake it for a bodyless declaration.
        let src = "/// # Safety\n/// Caller checked avx2.\n\
                   #[target_feature(enable = \"avx2,fma\")]\n\
                   unsafe fn d(rows: [&[f32]; 4]) -> [f32; 4] {\n\
                       let z = _mm256_setzero_ps();\n\
                       [0.0; 4]\n\
                   }\n";
        assert!(lints("crates/nn/src/kernels.rs", src).is_empty());
    }

    #[test]
    fn suppressions_apply_same_line_or_line_above() {
        let above = "fn t() {\n    // gced-allow(DET003): startup wait, not a result path\n    let _ = std::time::Instant::now();\n}\n";
        let outcome = check_file("crates/core/src/lib.rs", above);
        assert!(outcome.findings.is_empty());
        assert_eq!(outcome.suppressions_used, 1);
        let same =
            "fn t() { let _ = std::time::Instant::now(); } // gced-allow(DET003): startup wait\n";
        assert!(lints("crates/core/src/lib.rs", same).is_empty());
        // A suppression for the wrong lint does not apply — the finding
        // stays AND the allow is reported unused.
        let wrong = "fn t() {\n    // gced-allow(DET004): wrong id\n    let _ = std::time::Instant::now();\n}\n";
        let mut ids = lints("crates/core/src/lib.rs", wrong);
        ids.sort();
        assert_eq!(ids, vec!["DET003", "SUPP001"]);
    }
}
