//! Lexer edge cases that break naive scanners — and the lint-level
//! consequences: code-looking text inside strings/comments must never
//! fire a lint, and comment-looking text inside strings must never
//! register a suppression.

use gced_analyze::lexer::{lex, TokKind};
use gced_analyze::lints::check_file;

fn lint_ids(path: &str, src: &str) -> Vec<&'static str> {
    check_file(path, src)
        .findings
        .into_iter()
        .map(|f| f.lint)
        .collect()
}

#[test]
fn raw_strings_with_hashes_swallow_everything() {
    let src = r####"
let a = r"no escapes \ here";
let b = r#"one " hash"#;
let c = r##"two "# hashes"##;
let tail = 1;
"####;
    let toks = lex(src);
    assert_eq!(
        toks.iter().filter(|t| t.kind == TokKind::Str).count(),
        3,
        "three raw strings: {toks:?}"
    );
    // The `"# hashes"` inside the two-hash string must not close it
    // early — `tail` is still lexed as a plain ident.
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "tail"));
}

#[test]
fn nested_block_comments_close_at_depth_zero() {
    let src = "/* outer /* inner /* deepest */ */ still comment */ fn f() {}";
    let toks = lex(src);
    assert_eq!(toks[0].kind, TokKind::BlockComment);
    assert!(toks[0].text.ends_with("still comment */"));
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "fn"));
}

#[test]
fn lifetimes_labels_and_chars_disambiguate() {
    let src =
        "fn f<'g>(x: &'g str) { 'outer: loop { break 'outer; } let q = '\"'; let e = '\\''; }";
    let toks = lex(src);
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, vec!["'g", "'g", "'outer", "'outer"]);
    let chars: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Char)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(chars, vec!["'\"'", "'\\''"]);
}

#[test]
fn unsafe_inside_strings_and_comments_never_fires() {
    let src = r##"
// this comment mentions unsafe code but contains none
/* block comment: unsafe { transmute } */
fn f() {
    let a = "unsafe { no_op() }";
    let b = r#"unsafe fn g()"#;
    let c = 1;
}
"##;
    assert!(lint_ids("crates/par/src/pool.rs", src).is_empty());
}

#[test]
fn lint_triggers_inside_strings_never_fire() {
    // Every DET trigger spelled inside string literals, in the paths
    // where the real code would fire.
    let wire = "fn f() { let s = \"m.iter() for k in map HashMap\"; }\n";
    assert!(lint_ids("crates/serve/src/wire.rs", wire).is_empty());
    let nn = "fn f() -> String { \"a += b; xs.iter().sum()\".to_string() }\n";
    assert!(lint_ids("crates/nn/src/attention.rs", nn).is_empty());
    let clock = "const DOC: &str = \"Instant::now() and SystemTime\";\n";
    assert!(lint_ids("crates/core/src/lib.rs", clock).is_empty());
}

#[test]
fn suppression_text_inside_a_string_is_not_a_suppression() {
    // The marker only counts in comments — a string carrying the same
    // text must not suppress and must not count as unused either.
    let src = "fn f() { let doc = \"// gced-allow(DET003): fake\"; }\n";
    assert!(lint_ids("crates/core/src/lib.rs", src).is_empty());
}

#[test]
fn unused_suppression_is_reported_with_its_line() {
    let src =
        "fn f() {\n    // gced-allow(DET002): stale — the += was removed\n    let x = 1;\n}\n";
    let out = check_file("crates/nn/src/matrix.rs", src);
    assert_eq!(out.findings.len(), 1);
    assert_eq!(out.findings[0].lint, "SUPP001");
    assert_eq!(out.findings[0].line, 2);
    assert_eq!(out.suppressions_used, 0);
}

#[test]
fn shebang_like_and_weird_starts_do_not_crash() {
    for src in [
        "",
        "\n\n\n",
        "\"unterminated",
        "r#\"unterminated raw",
        "/* unterminated comment",
        "'a",
        "#",
    ] {
        let _ = lex(src);
        let _ = check_file("crates/core/src/lib.rs", src);
    }
}
