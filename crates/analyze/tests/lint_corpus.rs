//! The lint corpus: for every catalog lint ID, a minimal positive
//! fixture that fires it and a matched negative fixture that stays
//! silent. This is the acceptance contract for the analyzer — if a lint
//! can't demonstrate both sides here, it isn't a lint, it's noise.

use gced_analyze::lints::check_file;
use gced_analyze::policy;

struct Case {
    lint: &'static str,
    path: &'static str,
    /// Must produce exactly this lint (and nothing else).
    positive: &'static str,
    /// Must produce no findings at all.
    negative: &'static str,
}

const CORPUS: &[Case] = &[
    Case {
        lint: "DET001",
        path: "crates/serve/src/metrics.rs",
        positive: "use std::collections::HashMap;\n\
                   fn render(counts: &HashMap<String, u64>) -> String {\n\
                       let mut out = String::new();\n\
                       for (k, v) in counts.iter() {\n\
                           out.push_str(k);\n\
                       }\n\
                       out\n\
                   }\n",
        negative: "use std::collections::HashMap;\n\
                   fn render(counts: &HashMap<String, u64>) -> String {\n\
                       let mut kv: Vec<_> = counts.iter().collect();\n\
                       kv.sort();\n\
                       let mut out = String::new();\n\
                       for (k, _v) in kv {\n\
                           out.push_str(k);\n\
                       }\n\
                       out\n\
                   }\n",
    },
    Case {
        // Second DET001 site: the response cache's eviction scan. An
        // unsorted map walk here picks a nondeterministic victim, which
        // changes WHICH stored response bytes survive to be replayed.
        lint: "DET001",
        path: "crates/store/src/lib.rs",
        positive: "use std::collections::HashMap;\n\
                   fn victim(entries: &HashMap<u128, u64>) -> Option<u128> {\n\
                       let mut best: Option<(u128, u64)> = None;\n\
                       for (fp, used) in entries.iter() {\n\
                           if best.map_or(true, |(_, b)| *used < b) {\n\
                               best = Some((*fp, *used));\n\
                           }\n\
                       }\n\
                       best.map(|(fp, _)| fp)\n\
                   }\n",
        negative: "struct Entry { fp: u128, used: u64 }\n\
                   fn victim(entries: &[Entry]) -> Option<u128> {\n\
                       // entries is kept sorted by fingerprint; the scan\n\
                       // order (and the tie-break) is deterministic.\n\
                       let mut best: Option<(u128, u64)> = None;\n\
                       for e in entries {\n\
                           if best.map_or(true, |(_, b)| e.used < b) {\n\
                               best = Some((e.fp, e.used));\n\
                           }\n\
                       }\n\
                       best.map(|(fp, _)| fp)\n\
                   }\n",
    },
    Case {
        lint: "DET002",
        path: "crates/nn/src/embedding.rs",
        positive: "fn dot(a: &[f32], b: &[f32]) -> f32 {\n\
                       let mut s = 0.0;\n\
                       for i in 0..a.len() { s += a[i] * b[i]; }\n\
                       s\n\
                   }\n",
        negative: "use crate::kernels;\n\
                   fn dot(a: &[f32], b: &[f32]) -> f32 {\n\
                       kernels::dot(a, b)\n\
                   }\n",
    },
    Case {
        lint: "DET003",
        path: "crates/eval/src/experiments.rs",
        positive: "fn stamp() -> std::time::Instant { std::time::Instant::now() }\n",
        negative: "fn stamp(steps: u64) -> u64 { steps * 17 }\n",
    },
    Case {
        lint: "DET004",
        path: "crates/qa/src/model.rs",
        positive: "fn pick() -> usize { rand::thread_rng().gen_range(0..4) }\n",
        negative: "use gced_rand::SeededRng;\n\
                   fn pick(rng: &mut SeededRng) -> usize { (rng.next_u64() % 4) as usize }\n",
    },
    Case {
        lint: "SAFE001",
        path: "crates/par/src/pool.rs",
        positive: "fn read(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n",
        negative: "fn read(p: *const u32) -> u32 {\n\
                       // SAFETY: caller guarantees p is valid and aligned\n\
                       // for the lifetime of this call.\n\
                       unsafe { *p }\n\
                   }\n",
    },
    Case {
        lint: "SAFE002",
        path: "crates/nn/src/kernels.rs",
        positive: "fn zero() -> f32 {\n\
                       let z = _mm256_setzero_ps();\n\
                       0.0\n\
                   }\n",
        negative: "/// # Safety\n\
                   /// Caller must have verified avx2 via have_simd().\n\
                   #[target_feature(enable = \"avx2\")]\n\
                   unsafe fn zero(x: __m256) -> __m256 {\n\
                       _mm256_add_ps(x, _mm256_setzero_ps())\n\
                   }\n",
    },
    Case {
        lint: "SUPP001",
        path: "crates/core/src/cache.rs",
        positive: "fn f() {\n\
                       // gced-allow(DET001): stale — nothing iterates here\n\
                       let x = 1;\n\
                   }\n",
        negative: "fn f() {\n\
                       // gced-allow(DET003): startup patience wait, not a result path\n\
                       let t = std::time::Instant::now();\n\
                   }\n",
    },
    Case {
        lint: "SUPP002",
        path: "crates/core/src/cache.rs",
        positive: "fn f() {\n\
                       // gced-allow(DET042): no such lint\n\
                       let x = 1;\n\
                   }\n",
        negative: "fn f() {\n\
                       // plain comment, mentions gced-allow syntax without the marker form\n\
                       let x = 1;\n\
                   }\n",
    },
];

#[test]
fn every_catalog_lint_has_a_corpus_case() {
    for l in policy::LINTS {
        assert!(
            CORPUS.iter().any(|c| c.lint == l.id),
            "lint {} missing from corpus",
            l.id
        );
    }
    // Every case covers a catalog lint (a lint may have several cases
    // at different in-scope paths, e.g. DET001).
    for c in CORPUS {
        assert!(
            policy::LINTS.iter().any(|l| l.id == c.lint),
            "corpus case for unknown lint {}",
            c.lint
        );
    }
    assert!(CORPUS.len() >= policy::LINTS.len());
}

#[test]
fn positives_fire_exactly_their_lint() {
    for case in CORPUS {
        let ids: Vec<&str> = check_file(case.path, case.positive)
            .findings
            .iter()
            .map(|f| f.lint)
            .collect();
        assert_eq!(
            ids,
            vec![case.lint],
            "positive fixture for {} on {} produced {:?}",
            case.lint,
            case.path,
            ids
        );
    }
}

#[test]
fn negatives_stay_silent() {
    for case in CORPUS {
        let found = check_file(case.path, case.negative).findings;
        assert!(
            found.is_empty(),
            "negative fixture for {} on {} produced {:?}",
            case.lint,
            case.path,
            found
        );
    }
}

#[test]
fn findings_carry_file_line_spans() {
    let case = &CORPUS[0];
    let out = check_file(case.path, case.positive);
    assert_eq!(out.findings.len(), 1);
    let f = &out.findings[0];
    assert_eq!(f.file, case.path);
    assert_eq!(f.line, 4, "DET001 fixture iterates on line 4");
    assert!(!f.message.is_empty());
}
