//! Table VII: nine TriviaQA baselines vs. their +GCED variants on
//! TriviaQA-Web and TriviaQA-Wiki. The paper's key shape here: gains are
//! several times larger than on SQuAD (avg +18.2/+14.6 on Web,
//! +19.3/+15.0 on Wiki) because TriviaQA contexts are long and noisy.

use gced_bench::{finish, prepare_context, start};
use gced_datasets::DatasetKind;
use gced_eval::experiments;
use gced_eval::tables::{pct, TextTable};
use gced_qa::zoo;

fn main() {
    let (scale, seed, t0) = start(
        "table7_qa_trivia",
        "QA baselines vs +GCED on TriviaQA (Table VII, ground-truth evidences)",
    );
    let zoo = zoo::trivia_models();
    for kind in [DatasetKind::TriviaWeb, DatasetKind::TriviaWiki] {
        println!("\n--- {} ---", kind.name());
        let ctx = prepare_context(kind, scale, seed);
        let rows = experiments::qa_augmentation(&ctx, &zoo);
        let mut table = TextTable::new(&[
            "Model",
            "EM",
            "F1",
            "+GCED EM",
            "+GCED F1",
            "paper EM",
            "paper F1",
            "paper +EM",
            "paper +F1",
        ]);
        let mut em_gains = Vec::new();
        let mut f1_gains = Vec::new();
        for r in &rows {
            em_gains.push(r.gced.em - r.base.em);
            f1_gains.push(r.gced.f1 - r.base.f1);
            table.row(vec![
                r.model.clone(),
                pct(r.base.em),
                pct(r.base.f1),
                pct(r.gced.em),
                pct(r.gced.f1),
                pct(r.paper_base.0),
                pct(r.paper_base.1),
                pct(r.paper_gced.0),
                pct(r.paper_gced.1),
            ]);
        }
        println!("{}", table.render());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "mean gain: EM +{:.1}, F1 +{:.1}  (paper: ~+13-16 EM absolute — far larger than SQuAD)",
            mean(&em_gains),
            mean(&f1_gains)
        );
        println!("TSV:\n{}", table.render_tsv());
    }
    finish(t0);
}
