//! Table IV: human evaluation of predicted-answer-based and
//! ground-truth-answer-based evidences on SQuAD-1.1 and SQuAD-2.0
//! (I/C/R/H per baseline model + the ground-truth row), plus the
//! Sec. IV-D1 word-reduction statistic (paper: 78.5 % on SQuAD).

use gced_bench::{finish, prepare_context, start};
use gced_datasets::DatasetKind;
use gced_eval::experiments;
use gced_eval::tables::{score, TextTable};
use gced_qa::zoo;

/// Paper Table IV hybrid scores (SQuAD-1.1, SQuAD-2.0) per row.
const PAPER_H: [(f64, f64); 10] = [
    (0.84, 0.85),
    (0.86, 0.88),
    (0.87, 0.84),
    (0.86, 0.86),
    (0.88, 0.89),
    (0.88, 0.88),
    (0.85, 0.88),
    (0.87, 0.90),
    (0.86, 0.89),
    (0.89, 0.90), // ground truth
];

fn main() {
    let (scale, seed, t0) = start(
        "table4_human_squad",
        "human evaluation of distilled evidences on SQuAD (Table IV)",
    );
    let zoo = zoo::squad_models();
    for (v_idx, kind) in [DatasetKind::Squad11, DatasetKind::Squad20]
        .into_iter()
        .enumerate()
    {
        println!("\n--- {} ---", kind.name());
        let ctx = prepare_context(kind, scale, seed);
        let rows = experiments::human_eval(&ctx, &zoo, scale);
        let mut table = TextTable::new(&["Source", "I", "C", "R", "H", "paper H", "reduction"]);
        for (i, r) in rows.iter().enumerate() {
            let paper = if v_idx == 0 {
                PAPER_H[i].0
            } else {
                PAPER_H[i].1
            };
            table.row(vec![
                r.source.clone(),
                score(r.outcome.informativeness),
                score(r.outcome.conciseness),
                score(r.outcome.readability),
                score(r.outcome.hybrid),
                score(paper),
                format!("{:.1}%", r.word_reduction * 100.0),
            ]);
        }
        println!("{}", table.render());
        println!(
            "mean gt word reduction on {}: {:.1}% (paper: 78.5% on SQuAD)",
            kind.name(),
            ctx.mean_word_reduction() * 100.0
        );
        println!("TSV:\n{}", table.render_tsv());
    }
    finish(t0);
}
