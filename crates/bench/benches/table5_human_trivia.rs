//! Table V: human evaluation of distilled evidences on TriviaQA-Web and
//! TriviaQA-Wiki (I/C/R/H per baseline + ground truth), plus the larger
//! word-reduction the paper reports for TriviaQA (87.2 %).

use gced_bench::{finish, prepare_context, start};
use gced_datasets::DatasetKind;
use gced_eval::experiments;
use gced_eval::tables::{score, TextTable};
use gced_qa::zoo;

/// Paper Table V hybrid scores (TriviaQA-Web, TriviaQA-Wiki) per row.
const PAPER_H: [(f64, f64); 10] = [
    (0.81, 0.82),
    (0.80, 0.78),
    (0.83, 0.80),
    (0.79, 0.77),
    (0.78, 0.79),
    (0.84, 0.81),
    (0.80, 0.82),
    (0.82, 0.80),
    (0.83, 0.81),
    (0.85, 0.83), // ground truth
];

fn main() {
    let (scale, seed, t0) = start(
        "table5_human_trivia",
        "human evaluation of distilled evidences on TriviaQA (Table V)",
    );
    let zoo = zoo::trivia_models();
    for (v_idx, kind) in [DatasetKind::TriviaWeb, DatasetKind::TriviaWiki]
        .into_iter()
        .enumerate()
    {
        println!("\n--- {} ---", kind.name());
        let ctx = prepare_context(kind, scale, seed);
        let rows = experiments::human_eval(&ctx, &zoo, scale);
        let mut table = TextTable::new(&["Source", "I", "C", "R", "H", "paper H", "reduction"]);
        for (i, r) in rows.iter().enumerate() {
            let paper = if v_idx == 0 {
                PAPER_H[i].0
            } else {
                PAPER_H[i].1
            };
            table.row(vec![
                r.source.clone(),
                score(r.outcome.informativeness),
                score(r.outcome.conciseness),
                score(r.outcome.readability),
                score(r.outcome.hybrid),
                score(paper),
                format!("{:.1}%", r.word_reduction * 100.0),
            ]);
        }
        println!("{}", table.render());
        println!(
            "mean gt word reduction on {}: {:.1}% (paper: 87.2% on TriviaQA)",
            kind.name(),
            ctx.mean_word_reduction() * 100.0
        );
        println!("TSV:\n{}", table.render_tsv());
    }
    finish(t0);
}
