//! Table II: inter-rater agreement (Krippendorff's α) per group and
//! criterion, over evidences distilled from ground-truth answers on the
//! SQuAD-style dataset. Also prints the Table I rubric the raters apply.

use gced_bench::{finish, prepare_context, start};
use gced_datasets::DatasetKind;
use gced_eval::experiments;
use gced_eval::tables::{score, TextTable};
use gced_qa::zoo;

fn main() {
    let (scale, seed, t0) = start("table2_agreement", "Krippendorff's alpha per rater group");
    println!("\n{}", gced_eval::rubric::render_table1());

    let ctx = prepare_context(DatasetKind::Squad11, scale, seed);
    // Rate a pooled, mixed-quality set (gt + weak-model predicted +
    // ASE-ablated evidences), matching the paper's pooled protocol.
    let outcome = experiments::agreement_study(&ctx, &zoo::squad_models()[0], scale);

    let mut table = TextTable::new(&["Criteria", "Group 1", "Group 2", "Group 3"]);
    let labels = [
        "Informativeness",
        "Conciseness",
        "Readability",
        "Hybrid Score",
    ];
    let paper = [
        [0.77, 0.81, 0.76],
        [0.83, 0.80, 0.75],
        [0.82, 0.77, 0.81],
        [0.81, 0.79, 0.78],
    ];
    for (c_idx, label) in labels.iter().enumerate() {
        let mut cells = vec![label.to_string()];
        for (g, paper_cell) in paper[c_idx].iter().enumerate() {
            let a = outcome.alpha.get(g).and_then(|row| row[c_idx]);
            cells.push(match a {
                Some(a) => format!("{} (paper {})", score(a), score(*paper_cell)),
                None => "n/a".to_string(),
            });
        }
        table.row(cells);
    }
    println!("{}", table.render());
    println!(
        "items rated: {}, discarded by the <0.7 agreement filter: {}",
        outcome.rated, outcome.discarded
    );
    println!("\nTSV:\n{}", table.render_tsv());
    finish(t0);
}
