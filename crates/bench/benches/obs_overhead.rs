//! The observability cost gate: `obs/span_disabled_overhead` runs the
//! exact `gced/distill_end_to_end` recipe through the now-instrumented
//! pipeline with tracing OFF (the default). The committed baseline in
//! `BENCH_pipeline.json` sits on the same medians as the end-to-end
//! bench, so a span fast path that stops being free shows up here as a
//! regression against the uninstrumented pipeline's own trajectory.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gced::{Gced, GcedConfig};
use gced_datasets::{generate, DatasetKind, GeneratorConfig};
use std::hint::black_box;

const CONTEXT: &str = "The American Football Conference (AFC) champion Denver Broncos defeated \
                       the National Football Conference (NFC) champion Carolina Panthers to earn \
                       the Super Bowl 50 title. The game was played at Lockwood Stadium in Boston. \
                       The halftime show featured a famous singer and a large fireworks display.";

fn bench_disabled_overhead(c: &mut Criterion) {
    // Tracing defaults off, but this bench exists to prove the
    // *disabled* fast path costs nothing — pin the state explicitly.
    gced_obs::set_enabled(false);
    let ds = generate(
        DatasetKind::Squad11,
        GeneratorConfig {
            train: 200,
            dev: 40,
            seed: 42,
        },
    );
    let gced = Gced::fit(&ds, GcedConfig::default());
    let question = "Which NFL team represented the AFC at Super Bowl 50?";
    c.bench_function("obs/span_disabled_overhead", |b| {
        b.iter_batched(
            || (),
            |_| {
                gced.distill(black_box(question), "Denver Broncos", CONTEXT)
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_disabled_overhead
}
criterion_main!(benches);
