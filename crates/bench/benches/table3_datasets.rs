//! Table III: dataset statistics. Prints the paper's split sizes, the
//! scaled sizes this run generates, and measured corpus properties
//! (context length, answerable rate) that drive the other experiments.

use gced_bench::{finish, start};
use gced_datasets::{generate, DatasetKind, GeneratorConfig};
use gced_eval::tables::TextTable;

fn main() {
    let (scale, seed, t0) = start("table3_datasets", "dataset statistics (Table III)");
    let mut table = TextTable::new(&[
        "Dataset",
        "Paper Train",
        "Paper Dev",
        "Gen Train",
        "Gen Dev",
        "Ctx words",
        "Answerable",
    ]);
    for kind in DatasetKind::all() {
        let (pt, pd) = kind.paper_sizes();
        let ds = generate(
            kind,
            GeneratorConfig {
                train: scale.train,
                dev: scale.dev,
                seed,
            },
        );
        let answerable = ds
            .train
            .examples
            .iter()
            .chain(&ds.dev.examples)
            .filter(|e| e.answerable)
            .count() as f64
            / (ds.train.len() + ds.dev.len()) as f64;
        table.row(vec![
            kind.name().to_string(),
            pt.to_string(),
            pd.to_string(),
            ds.train.len().to_string(),
            ds.dev.len().to_string(),
            format!("{:.0}", ds.mean_context_words()),
            format!("{:.0}%", answerable * 100.0),
        ]);
    }
    println!("\n{}", table.render());
    println!("TSV:\n{}", table.render_tsv());
    finish(t0);
}
