//! Table VIII: component ablation (BERT + ground-truth evidences on
//! SQuAD-2.0): human-evaluation I/C/R/H plus EM/F1 for each knocked-out
//! component vs. the full system.
//!
//! Extended design-choice ablations beyond the paper's table (DESIGN.md
//! §4): grow-order (max-attention vs index-order), clip protection
//! (forest-protected vs unrestricted), the clip-count M sweep, and the
//! Eq. 5 weight sweep that justifies the default (α, β, γ).

use gced::{ClipMode, GcedConfig};
use gced_bench::{finish, prepare_context, start};
use gced_datasets::DatasetKind;
use gced_eval::experiments;
use gced_eval::raters::RatedItem;
use gced_eval::tables::{pct, score, TextTable};
use gced_eval::RatingProtocol;
use gced_qa::zoo;

/// Paper Table VIII rows (I, C, R, H, EM, F1), ending with the full
/// system, in the same order as our runner output.
const PAPER: [(f64, f64, f64, f64, f64, f64); 8] = [
    (0.85, 0.65, 0.80, 0.77, 72.0, 78.2), // w/o ASE
    (0.67, 0.79, 0.77, 0.74, 70.2, 76.5), // w/o QWS
    (0.82, 0.80, 0.67, 0.76, 75.2, 80.6), // w/o Grow
    (0.81, 0.70, 0.81, 0.77, 80.5, 86.3), // w/o Clip
    (0.73, 0.78, 0.80, 0.77, 80.2, 87.0), // w/o I
    (0.80, 0.72, 0.76, 0.76, 79.3, 86.9), // w/o C
    (0.81, 0.83, 0.75, 0.80, 82.1, 88.4), // w/o R
    (0.86, 0.83, 0.82, 0.84, 85.0, 90.9), // BERT+GCED (full)
];

fn main() {
    let (scale, seed, t0) = start(
        "table8_ablation",
        "GCED component ablation (Table VIII, BERT on SQuAD-2.0)",
    );
    let ctx = prepare_context(DatasetKind::Squad20, scale, seed);
    let bert = &zoo::squad_models()[0];

    let rows = experiments::ablation(&ctx, bert, scale);
    let mut table = TextTable::new(&[
        "Sources", "I", "C", "R", "H", "EM", "F1", "paper H", "paper EM",
    ]);
    for (i, r) in rows.iter().enumerate() {
        table.row(vec![
            r.label.clone(),
            score(r.outcome.informativeness),
            score(r.outcome.conciseness),
            score(r.outcome.readability),
            score(r.outcome.hybrid),
            pct(r.em),
            pct(r.f1),
            score(PAPER[i].3),
            pct(PAPER[i].4),
        ]);
    }
    println!("\n{}", table.render());
    println!("TSV:\n{}", table.render_tsv());

    // ---- extended design ablations -------------------------------------
    println!("\n--- design-choice ablations (beyond the paper's table) ---");
    let protocol = RatingProtocol::paper(seed);
    let sample: Vec<&gced_datasets::QaExample> = ctx
        .dataset
        .dev
        .examples
        .iter()
        .filter(|e| e.answerable)
        .take(scale.rated)
        .collect();

    let mut design = TextTable::new(&["Variant", "I", "C", "R", "H", "mean tokens"]);
    let variants: Vec<(&str, GcedConfig)> = vec![
        (
            "max-attention grow (default)",
            GcedConfig {
                seed,
                ..GcedConfig::default()
            },
        ),
        (
            "index-order grow",
            GcedConfig {
                grow_max_attention: false,
                seed,
                ..GcedConfig::default()
            },
        ),
        (
            "unprotected clip",
            GcedConfig {
                clip_protect_forest: false,
                seed,
                ..GcedConfig::default()
            },
        ),
        (
            "M=0 (no clip)",
            GcedConfig {
                clip: ClipMode::Fixed(0),
                seed,
                ..GcedConfig::default()
            },
        ),
        (
            "M=1",
            GcedConfig {
                clip: ClipMode::Fixed(1),
                seed,
                ..GcedConfig::default()
            },
        ),
        (
            "M=2",
            GcedConfig {
                clip: ClipMode::Fixed(2),
                seed,
                ..GcedConfig::default()
            },
        ),
        (
            "M=4",
            GcedConfig {
                clip: ClipMode::Fixed(4),
                seed,
                ..GcedConfig::default()
            },
        ),
        (
            "M=8",
            GcedConfig {
                clip: ClipMode::Fixed(8),
                seed,
                ..GcedConfig::default()
            },
        ),
        (
            "weights a=.8 b=.1 g=.1",
            GcedConfig {
                alpha: 0.8,
                beta: 0.1,
                gamma: 0.1,
                seed,
                ..GcedConfig::default()
            },
        ),
        (
            "weights a=.2 b=.2 g=.6",
            GcedConfig {
                alpha: 0.2,
                beta: 0.2,
                gamma: 0.6,
                seed,
                ..GcedConfig::default()
            },
        ),
        (
            "weights a=.33 b=.33 g=.33",
            GcedConfig {
                alpha: 1.0 / 3.0,
                beta: 1.0 / 3.0,
                gamma: 1.0 / 3.0,
                seed,
                ..GcedConfig::default()
            },
        ),
    ];
    for (label, cfg) in variants {
        let pipeline = ctx.gced.clone().with_config(cfg);
        let mut items = Vec::new();
        let mut tokens = Vec::new();
        for ex in &sample {
            if let Ok(d) = pipeline.distill(&ex.question, &ex.answer, &ex.context) {
                items.push(RatedItem::from_distillation(
                    format!("{label}-{}", ex.id),
                    &d,
                    &ex.answer,
                ));
                tokens.push(d.evidence_tokens.len() as f64);
            }
        }
        let out = protocol.run(&items);
        let mean_tokens = tokens.iter().sum::<f64>() / tokens.len().max(1) as f64;
        design.row(vec![
            label.to_string(),
            score(out.informativeness),
            score(out.conciseness),
            score(out.readability),
            score(out.hybrid),
            format!("{mean_tokens:.1}"),
        ]);
    }
    println!("{}", design.render());
    println!("TSV:\n{}", design.render_tsv());
    finish(t0);
}
