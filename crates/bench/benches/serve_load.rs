//! Load generator for the `gced-serve` online distillation server.
//!
//! Starts a warm in-process server on an ephemeral port, fires a
//! warm-up burst, then hammers `POST /v1/distill` from concurrent
//! client threads over a corpus of generated dev examples. Client-side
//! per-request latencies give the exact warm-path p50/p99; the server's
//! `/metrics` endpoint contributes the mean coalesced batch size, the
//! batch histogram, and the parse-cache hit rate. Results are printed
//! and recorded as JSON in `BENCH_serve.json` (override with
//! `GCED_SERVE_BENCH_OUT`).
//!
//! Knobs: `GCED_SERVE_CLIENTS` (default 8), `GCED_SERVE_REQUESTS`
//! (total measured requests, default 192), `GCED_SERVE_WARMUP`
//! (default 32), `GCED_SERVE_BATCH_MAX` (default 16),
//! `GCED_SERVE_FLUSH_US` (default 2000), `GCED_SERVE_CACHE_REQUESTS`
//! (Zipf phase, default 256). The fit honors `GCED_FIT_CACHE` like
//! every other bench runner.
//!
//! Phase 1 runs with the response cache DISABLED so the cold pipeline
//! numbers stay comparable across revisions. Phase 2 starts a second
//! server with the gced-store response cache on and replays a
//! Zipf-distributed request mix (seeded splitmix64 inverse-CDF
//! sampling, exponent 1.1 — a few hot requests dominate, the long tail
//! stays cold), splitting latencies by the X-Gced-Cache header into
//! warm-hit and miss quantiles.

use gced_bench::{finish, fitted, start};
use gced_datasets::json::{self, Json};
use gced_datasets::{generate, DatasetKind, GeneratorConfig};
use gced_serve::wire::{render_request, DistillRequest};
use gced_serve::{client, ServeConfig};
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let (scale, seed, t0) = start(
        "serve_load",
        "warm-path latency and batch coalescing of the gced-serve server",
    );
    let clients = env_usize("GCED_SERVE_CLIENTS", 8).max(1);
    let requests = env_usize("GCED_SERVE_REQUESTS", 192).max(clients);
    let warmup = env_usize("GCED_SERVE_WARMUP", 32);
    let batch_max = env_usize("GCED_SERVE_BATCH_MAX", 16);
    let flush_us = env_usize("GCED_SERVE_FLUSH_US", 2_000);

    let kind = DatasetKind::Squad11;
    let pipeline = fitted(kind, scale, seed);
    let dataset = generate(
        kind,
        GeneratorConfig {
            train: scale.train,
            dev: scale.dev,
            seed,
        },
    );
    let corpus: Vec<String> = dataset
        .dev
        .examples
        .iter()
        .filter(|e| e.answerable)
        .map(|e| {
            render_request(&DistillRequest {
                question: e.question.clone(),
                answer: e.answer.clone(),
                context: e.context.clone(),
            })
        })
        .collect();
    assert!(
        !corpus.is_empty(),
        "dev split produced no answerable examples"
    );

    // Response cache OFF in phase 1: these are the pipeline's numbers.
    let config = ServeConfig {
        batch_max,
        flush: Duration::from_micros(flush_us as u64),
        queue_capacity: (requests + clients).max(256),
        cache_entries: 0,
        ..ServeConfig::default()
    };
    let handle = gced_serve::start(pipeline.clone(), config).expect("bind ephemeral port");
    let addr = handle.addr();
    println!(
        "server: {addr} (clients={clients}, requests={requests}, warmup={warmup}, \
         batch_max={batch_max}, flush={flush_us}us)"
    );

    // Warm-up: fills the parse cache and faults in every lazy path.
    for i in 0..warmup {
        let body = &corpus[i % corpus.len()];
        let r = client::post(addr, "/v1/distill", body).expect("warmup request");
        assert!(
            r.status == 200 || r.status == 422,
            "warmup status {}: {}",
            r.status,
            r.text()
        );
    }

    // Measured run: each client thread posts its share sequentially;
    // concurrency across threads is what exercises the coalescer.
    let wall_start = Instant::now();
    let latencies_us: Vec<u64> = std::thread::scope(|scope| {
        let corpus = &corpus;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let share = requests / clients + usize::from(c < requests % clients);
                    let mut lat = Vec::with_capacity(share);
                    for i in 0..share {
                        let body = &corpus[(c + i * clients) % corpus.len()];
                        let t = Instant::now();
                        let r = client::post(addr, "/v1/distill", body).expect("request");
                        let us = t.elapsed().as_micros() as u64;
                        assert!(
                            r.status == 200 || r.status == 422,
                            "status {}: {}",
                            r.status,
                            r.text()
                        );
                        lat.push(us);
                    }
                    lat
                })
            })
            .collect();
        let mut all = Vec::with_capacity(requests);
        for h in handles {
            all.extend(h.join().expect("client thread"));
        }
        all
    });
    let wall = wall_start.elapsed();

    let mut sorted = latencies_us.clone();
    sorted.sort_unstable();
    let pick =
        |q: f64| sorted[((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1)];
    let p50 = pick(0.50);
    let p99 = pick(0.99);
    let mean = sorted.iter().sum::<u64>() as f64 / sorted.len() as f64;
    let throughput = sorted.len() as f64 / wall.as_secs_f64();

    let metrics_doc = client::get(addr, "/metrics").expect("metrics").text();
    let metrics = json::parse(&metrics_doc).expect("metrics JSON");
    let batch = metrics.get("batch_size").expect("batch_size section");
    let mean_batch = batch.get("mean").and_then(Json::as_f64).unwrap_or(0.0);
    let batch_buckets = render_buckets(batch);
    let parse_cache = metrics
        .get("parse_cache")
        .map(render_parse_cache)
        .unwrap_or_else(|| "null".to_string());

    println!("\nwarm-path latency: p50={p50}us p99={p99}us mean={mean:.0}us");
    println!("throughput: {throughput:.1} req/s over {clients} clients");
    println!("mean coalesced batch size: {mean_batch:.2}");
    println!("parse cache: {parse_cache}");

    handle.shutdown();
    handle.join();

    // ---- Phase 2: Zipf-repeated workload against the response cache.
    let cache_requests = env_usize("GCED_SERVE_CACHE_REQUESTS", 256).max(clients);
    let zipf_s = 1.1f64;
    let cdf: Vec<f64> = {
        let weights: Vec<f64> = (0..corpus.len())
            .map(|i| 1.0 / ((i + 1) as f64).powf(zipf_s))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect()
    };
    let cache_handle = gced_serve::start(
        pipeline,
        ServeConfig {
            batch_max,
            flush: Duration::from_micros(flush_us as u64),
            queue_capacity: (cache_requests + clients).max(256),
            ..ServeConfig::default() // response cache ON (defaults)
        },
    )
    .expect("bind ephemeral port");
    let cache_addr = cache_handle.addr();
    println!(
        "\ncache phase: {cache_addr} (zipf s={zipf_s}, requests={cache_requests}, \
         corpus={})",
        corpus.len()
    );
    // (latency_us, was_hit) per request; each client samples its own
    // deterministic splitmix64 stream.
    let tagged: Vec<(u64, bool)> = std::thread::scope(|scope| {
        let (corpus, cdf) = (&corpus, &cdf);
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let share =
                        cache_requests / clients + usize::from(c < cache_requests % clients);
                    let mut rng = seed ^ (c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    let mut lat = Vec::with_capacity(share);
                    for _ in 0..share {
                        let u = (splitmix64(&mut rng) >> 11) as f64 / (1u64 << 53) as f64;
                        let idx = cdf.partition_point(|&p| p < u).min(corpus.len() - 1);
                        let t = Instant::now();
                        let r = client::post(cache_addr, "/v1/distill", &corpus[idx])
                            .expect("cache-phase request");
                        let us = t.elapsed().as_micros() as u64;
                        assert!(
                            r.status == 200 || r.status == 422,
                            "status {}: {}",
                            r.status,
                            r.text()
                        );
                        lat.push((us, r.cache.as_deref() == Some("hit")));
                    }
                    lat
                })
            })
            .collect();
        let mut all = Vec::with_capacity(cache_requests);
        for h in handles {
            all.extend(h.join().expect("cache-phase client thread"));
        }
        all
    });
    let mut hit_us: Vec<u64> = tagged
        .iter()
        .filter(|(_, h)| *h)
        .map(|(us, _)| *us)
        .collect();
    let mut miss_us: Vec<u64> = tagged
        .iter()
        .filter(|(_, h)| !*h)
        .map(|(us, _)| *us)
        .collect();
    hit_us.sort_unstable();
    miss_us.sort_unstable();
    let q = |s: &[u64], q: f64| -> f64 {
        if s.is_empty() {
            return 0.0;
        }
        s[((q * (s.len() - 1) as f64).round() as usize).min(s.len() - 1)] as f64
    };
    let hit_rate = hit_us.len() as f64 / tagged.len() as f64;
    let warm_hit_p50_ms = q(&hit_us, 0.50) / 1000.0;
    let warm_hit_p99_ms = q(&hit_us, 0.99) / 1000.0;
    let miss_p50_ms = q(&miss_us, 0.50) / 1000.0;
    println!(
        "cache: hits={} misses={} hit_rate={hit_rate:.3}",
        hit_us.len(),
        miss_us.len()
    );
    println!(
        "cache: warm_hit_p50={warm_hit_p50_ms:.3}ms warm_hit_p99={warm_hit_p99_ms:.3}ms \
         miss_p50={miss_p50_ms:.3}ms"
    );
    cache_handle.shutdown();
    cache_handle.join();

    let mut out = String::with_capacity(1024);
    out.push_str("{\n  \"description\": \"gced-serve load generator: warm-path request latency (client-side, us) and batch coalescing; regenerate with `cargo bench -p gced-bench --bench serve_load`\",\n");
    out.push_str(&format!(
        "  \"scale\": \"train{}-dev{}-rated{}\",\n",
        scale.train, scale.dev, scale.rated
    ));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"clients\": {clients},\n"));
    out.push_str(&format!("  \"requests\": {},\n", sorted.len()));
    out.push_str(&format!("  \"warmup\": {warmup},\n"));
    out.push_str(&format!("  \"batch_max\": {batch_max},\n"));
    out.push_str(&format!("  \"flush_us\": {flush_us},\n"));
    out.push_str(&format!("  \"warm_p50_us\": {p50},\n"));
    out.push_str(&format!("  \"warm_p99_us\": {p99},\n"));
    out.push_str(&format!("  \"warm_mean_us\": {mean:.1},\n"));
    out.push_str(&format!("  \"throughput_rps\": {throughput:.1},\n"));
    out.push_str(&format!("  \"mean_batch_size\": {mean_batch:.3},\n"));
    out.push_str(&format!("  \"batch_histogram\": {batch_buckets},\n"));
    out.push_str(&format!("  \"parse_cache\": {parse_cache},\n"));
    out.push_str(&format!(
        "  \"cache\": {{\"zipf_exponent\": {zipf_s}, \"requests\": {}, \"hits\": {}, \
         \"misses\": {}, \"hit_rate\": {hit_rate:.3}, \"warm_hit_p50_ms\": \
         {warm_hit_p50_ms:.3}, \"warm_hit_p99_ms\": {warm_hit_p99_ms:.3}, \
         \"miss_p50_ms\": {miss_p50_ms:.3}}}\n",
        tagged.len(),
        hit_us.len(),
        miss_us.len(),
    ));
    out.push_str("}\n");
    // `cargo bench` sets the CWD to the package dir; the committed
    // record lives at the workspace root, two levels up.
    let out_path = std::env::var("GCED_SERVE_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out_path, &out)
        .unwrap_or_else(|e| panic!("cannot write bench record {out_path}: {e}"));
    println!("recorded: {out_path}");
    finish(t0);
}

/// Deterministic splitmix64 stream for the Zipf inverse-CDF sampler.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Re-render the `/metrics` batch buckets as compact JSON.
fn render_buckets(batch: &Json) -> String {
    let Some(buckets) = batch.get("buckets").and_then(Json::as_arr) else {
        return "[]".to_string();
    };
    let mut out = String::from("[");
    for (i, b) in buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let le = b
            .get("le")
            .map(|v| match v {
                Json::Num(n) => format!("{n}"),
                _ => "\"inf\"".to_string(),
            })
            .unwrap_or_default();
        let count = b.get("count").and_then(Json::as_f64).unwrap_or(0.0);
        out.push_str(&format!("{{\"le\":{le},\"count\":{count}}}"));
    }
    out.push(']');
    out
}

fn render_parse_cache(pc: &Json) -> String {
    let field = |k: &str| pc.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    format!(
        "{{\"hits\":{},\"misses\":{},\"len\":{},\"capacity\":{}}}",
        field("hits"),
        field("misses"),
        field("len"),
        field("capacity")
    )
}
