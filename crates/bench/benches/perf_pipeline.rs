//! Criterion micro/macro benchmarks for the distillation pipeline —
//! not a paper table, but the throughput numbers a systems reader
//! expects: per-substrate cost (tokenize, parse, attend, LM),
//! end-to-end distillation latency, a clip-heavy long-context scenario,
//! and batch distillation throughput.
//!
//! Median ns/iter per benchmark is written to `target/gced-criterion/`
//! by the harness; the committed perf trajectory lives in
//! `BENCH_pipeline.json` at the repository root.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gced::{Gced, GcedConfig};
use gced_datasets::{generate, DatasetKind, GeneratorConfig, ShardSpec};
use gced_eval::shard::{merge, ShardMetric, ShardOutput, ShardRow};
use gced_nn::{AttentionConfig, EmbeddingTable, MultiHeadAttention};
use gced_parser::CkyParser;
use std::hint::black_box;

const CONTEXT: &str = "The American Football Conference (AFC) champion Denver Broncos defeated \
                       the National Football Conference (NFC) champion Carolina Panthers to earn \
                       the Super Bowl 50 title. The game was played at Lockwood Stadium in Boston. \
                       The halftime show featured a famous singer and a large fireworks display.";

/// A long, distractor-heavy context: the clip search must prune many
/// subtrees, which is exactly the hot path the incremental scoring
/// engine targets.
fn long_context() -> String {
    let mut s = String::from(
        "The American Football Conference champion Denver Broncos defeated the National \
         Football Conference champion Carolina Panthers to earn the Super Bowl 50 title in a \
         long and memorable evening game watched by thousands of fans across the country. ",
    );
    let distractors = [
        "The stadium had opened two years earlier after a lengthy construction project.",
        "Local restaurants reported record sales of food and drinks during the week.",
        "The halftime show featured a famous singer and a large fireworks display.",
        "Television ratings for the broadcast exceeded every previous championship game.",
        "The weather stayed mild for the entire afternoon and into the late evening.",
        "Many visiting supporters traveled by train from distant cities to attend.",
        "The trophy ceremony lasted an hour and included speeches from both coaches.",
    ];
    for d in distractors {
        s.push_str(d);
        s.push(' ');
    }
    s
}

fn bench_substrates(c: &mut Criterion) {
    c.bench_function("text/analyze_context", |b| {
        b.iter(|| gced_text::analyze(black_box(CONTEXT)))
    });

    let doc = gced_text::analyze(CONTEXT);
    let parser = CkyParser::embedded();
    c.bench_function("parser/cky_parse_document", |b| {
        b.iter(|| gced_parser::parse_document_with(black_box(&doc), &parser))
    });

    let cfg = AttentionConfig {
        d_model: 64,
        heads: 16,
        d_k: 64,
        seed: 42,
        positional_weight: 0.35,
    };
    let mha = MultiHeadAttention::new(cfg);
    let table = EmbeddingTable::new(64, 42);
    let words: Vec<String> = doc.tokens.iter().map(|t| t.lower()).collect();
    c.bench_function("nn/attention_16head_d64", |b| {
        b.iter(|| mha.attend_words(black_box(&words), &table))
    });

    // Kernel micro-benches: the two matmul shapes the attention hot path
    // is built from (projection-shaped A·B and score-shaped A·Bᵀ), plus
    // the full Eq. 8 encode. These isolate the numeric substrate from
    // embedding/softmax so kernel-level changes are visible on their own.
    let x60 = mha.embed_sequence(&words, &table);
    let seed_mat = |rows: usize, cols: usize, salt: u64| {
        gced_nn::Matrix::from_fn(rows, cols, |r, c| {
            let h = (r as u64)
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(c as u64)
                .wrapping_mul(1_442_695_040_888_963_407)
                .wrapping_add(salt);
            ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
    };
    let a128 = seed_mat(128, 128, 1);
    let b128 = seed_mat(128, 128, 2);
    c.bench_function("nn/matmul_128x128x128", |b| {
        b.iter(|| black_box(&a128).matmul(&b128))
    });
    let b60 = seed_mat(60, 64, 3);
    c.bench_function("nn/matmul_nt_60x64", |b| {
        b.iter(|| black_box(&x60).matmul_nt(&b60))
    });
    c.bench_function("nn/encode_16head_d64", |b| {
        b.iter(|| mha.encode(black_box(&x60)))
    });

    let corpus: Vec<Vec<String>> = (0..200)
        .map(|i| {
            format!("the team {i} won the title in the final game")
                .split(' ')
                .map(String::from)
                .collect()
        })
        .collect();
    let lm = gced_lm::TrigramLm::train(&corpus);
    c.bench_function("lm/perplexity_27_tokens", |b| {
        b.iter(|| lm.perplexity(black_box(&words[..27.min(words.len())])))
    });
}

/// A grow-heavy scenario: many context sentences, the answer buried in
/// the middle, so ASE's greedy search faces a wide candidate pool each
/// round — the trial loop the shared search engine prunes with the
/// admissible per-sentence F1 bound.
fn grow_context() -> String {
    let fillers = [
        "The city council debated the new transit budget for several hours that morning.",
        "A light rain moved across the valley before the crowds arrived at the gates.",
        "Vendors sold programs and souvenirs along the avenue outside the stadium.",
        "The marching band rehearsed its halftime routine twice during the afternoon.",
        "Several broadcasters set up their equipment near the southern entrance.",
        "Security crews checked the perimeter fencing one final time before kickoff.",
    ];
    let mut s = String::new();
    for f in fillers.iter().take(3) {
        s.push_str(f);
        s.push(' ');
    }
    s.push_str(
        "The American Football Conference champion Denver Broncos defeated the National \
         Football Conference champion Carolina Panthers to earn the Super Bowl 50 title. ",
    );
    for f in fillers.iter().skip(3) {
        s.push_str(f);
        s.push(' ');
    }
    s.push_str("Fans lingered in the concourse long after the final whistle had sounded. ");
    s.push_str("The cleanup crews worked through the night to restore the field surface.");
    s
}

fn bench_pipeline(c: &mut Criterion) {
    let ds = generate(
        DatasetKind::Squad11,
        GeneratorConfig {
            train: 200,
            dev: 40,
            seed: 42,
        },
    );
    let gced = Gced::fit(&ds, GcedConfig::default());
    let question = "Which NFL team represented the AFC at Super Bowl 50?";

    c.bench_function("gced/distill_end_to_end", |b| {
        b.iter_batched(
            || (),
            |_| {
                gced.distill(black_box(question), "Denver Broncos", CONTEXT)
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });

    // Clip-heavy scenario: a wide AOS window over a long noisy context
    // forces many SCS iterations over many candidate subtrees.
    let clip_heavy = Gced::fit(
        &ds,
        GcedConfig {
            max_ase_sentences: 8,
            ..GcedConfig::default()
        },
    );
    let long_ctx = long_context();
    c.bench_function("gced/clip_long_context", |b| {
        b.iter_batched(
            || (),
            |_| {
                clip_heavy
                    .distill(black_box(question), "Denver Broncos", &long_ctx)
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });

    // Grow-heavy scenario: a sentence-rich context makes the ASE greedy
    // search the dominant cost (every round trials every unselected
    // sentence) — the phase the unified search engine makes incremental.
    let grow_ctx = grow_context();
    c.bench_function("gced/grow_long_context", |b| {
        b.iter_batched(
            || (),
            |_| {
                gced.distill(black_box(question), "Denver Broncos", &grow_ctx)
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });

    // Batch throughput over 20 dev examples (one full table-runner inner
    // loop). Measured per batch, not per example.
    let batch: Vec<(String, String, String)> = ds
        .dev
        .examples
        .iter()
        .filter(|e| e.answerable)
        .take(20)
        .map(|e| (e.question.clone(), e.answer.clone(), e.context.clone()))
        .collect();
    assert_eq!(batch.len(), 20, "dev split too small for the batch bench");
    c.bench_function("gced/distill_batch_20", |b| {
        b.iter_batched(
            || (),
            |_| gced.distill_batch(black_box(&batch)),
            BatchSize::SmallInput,
        )
    });

    let mut qa = gced_qa::QaModel::new(gced_qa::ModelProfile::plm());
    qa.train(&ds.train.examples);
    c.bench_function("qa/predict_span", |b| {
        b.iter(|| qa.predict(black_box(question), CONTEXT))
    });
}

/// Shard-runner infrastructure: persistent-pool dispatch overhead and
/// the decode→validate→merge path a driver pays per sharded run.
fn bench_shard_runner(c: &mut Criterion) {
    // Pool fan-out over cheap items: dominated by job posting and
    // claim/retire handshakes — the cost `par_map` pays beyond the map
    // itself, now amortized by the persistent pool instead of a
    // spawn/join per call.
    let items: Vec<u64> = (0..256).collect();
    c.bench_function("par/pool_map_256", |b| {
        b.iter(|| gced_par::par_map(black_box(&items), |_, &x| x.wrapping_mul(x) ^ (x >> 3)))
    });

    // Merge throughput: 8 shards × 128 rows of table-sized strings,
    // pre-encoded to JSON; measures parse + validation + ordered
    // reassembly (the driver's whole post-processing step).
    let encoded: Vec<String> = ShardSpec::all(8)
        .into_iter()
        .map(|spec| {
            let range = spec.range(1024);
            ShardOutput {
                experiment: "synthetic".to_string(),
                kind: DatasetKind::Squad11,
                seed: 42,
                scale_tag: "train1-dev1-rated1".to_string(),
                shard: spec,
                n_items: 1024,
                header: vec![
                    "Example".to_string(),
                    "Tokens".to_string(),
                    "Reduction".to_string(),
                ],
                rows: range
                    .clone()
                    .map(|item| ShardRow {
                        item,
                        cells: vec![
                            format!("squad-1.1-dev-{item:06}"),
                            (item % 23).to_string(),
                            format!("{:.1}%", (item % 97) as f64),
                        ],
                    })
                    .collect(),
                metrics: range
                    .map(|item| ShardMetric {
                        item,
                        name: "word_reduction".to_string(),
                        value: (item % 97) as f64 / 97.0,
                    })
                    .collect(),
            }
            .to_json()
        })
        .collect();
    c.bench_function("eval/shard_merge_8x1024", |b| {
        b.iter(|| {
            let outputs: Vec<ShardOutput> = encoded
                .iter()
                .map(|t| ShardOutput::from_json(black_box(t)).unwrap())
                .collect();
            merge(&outputs).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_substrates, bench_pipeline, bench_shard_runner
}
criterion_main!(benches);
