//! Figure 7: performance degradation of QA models augmented by
//! predicted-answer-based evidences, for δ ∈ {0.2, 0.5, 0.8, 1.0}
//! substitution of ground-truth answers, across all four datasets
//! (a: SQuAD-1.1, b: SQuAD-2.0, c: TriviaQA-Web, d: TriviaQA-Wiki).
//!
//! The paper's shape: curves decline gently with δ; SQuAD models lose
//! only ~2-3 % at δ = 1, TriviaQA models lose more because their
//! baseline predictions are worse.

use gced_bench::{finish, prepare_context, start};
use gced_datasets::DatasetKind;
use gced_eval::experiments;
use gced_eval::tables::TextTable;
use gced_qa::zoo;

fn main() {
    let (scale, seed, t0) = start(
        "fig7_degradation",
        "EM/F1 degradation vs predicted-answer substitution rate (Fig. 7)",
    );
    // The same δ grid the sharded `degradation` experiment runs on.
    let deltas = experiments::DEGRADATION_DELTAS;
    for kind in DatasetKind::all() {
        println!("\n--- {} ---", kind.name());
        let ctx = prepare_context(kind, scale, seed);
        let zoo = if kind.is_trivia() {
            zoo::trivia_models()
        } else {
            zoo::squad_models()
        };
        let series = experiments::degradation(&ctx, &zoo, &deltas);
        let mut table = TextTable::new(&[
            "Model",
            "gt",
            "pred20",
            "pred50",
            "pred80",
            "pred",
            "drop@pred",
        ]);
        for s in &series {
            let mut cells = vec![s.model.clone()];
            for (_, em, f1) in &s.points {
                cells.push(format!("{em:.1}/{f1:.1}"));
            }
            let drop = s.points[0].1 - s.points[4].1;
            cells.push(format!("{drop:+.1} EM"));
            table.row(cells);
        }
        println!("{}", table.render());
        println!("TSV:\n{}", table.render_tsv());
    }
    println!(
        "\n(cells are EM/F1; gt = ground-truth answers only, predX = X% predicted answers, \
         matching Fig. 7's x-axis)"
    );
    finish(t0);
}
