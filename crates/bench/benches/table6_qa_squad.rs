//! Table VI: nine SQuAD baselines vs. their evidence-augmented (+GCED)
//! variants on SQuAD-1.1 and SQuAD-2.0. The evidences are distilled from
//! ground-truth answers; the +GCED models are retrained on evidence
//! contexts and evaluated on evidence contexts, per Sec. IV-D2.

use gced_bench::{finish, prepare_context, start};
use gced_datasets::DatasetKind;
use gced_eval::experiments;
use gced_eval::tables::{pct, TextTable};
use gced_qa::zoo;

fn main() {
    let (scale, seed, t0) = start(
        "table6_qa_squad",
        "QA baselines vs +GCED on SQuAD (Table VI, ground-truth evidences)",
    );
    let zoo = zoo::squad_models();
    for kind in [DatasetKind::Squad11, DatasetKind::Squad20] {
        println!("\n--- {} ---", kind.name());
        let ctx = prepare_context(kind, scale, seed);
        let rows = experiments::qa_augmentation(&ctx, &zoo);
        let mut table = TextTable::new(&[
            "Model",
            "EM",
            "F1",
            "+GCED EM",
            "+GCED F1",
            "paper EM",
            "paper F1",
            "paper +EM",
            "paper +F1",
        ]);
        let mut em_gains = Vec::new();
        let mut f1_gains = Vec::new();
        for r in &rows {
            em_gains.push(r.gced.em - r.base.em);
            f1_gains.push(r.gced.f1 - r.base.f1);
            table.row(vec![
                r.model.clone(),
                pct(r.base.em),
                pct(r.base.f1),
                pct(r.gced.em),
                pct(r.gced.f1),
                pct(r.paper_base.0),
                pct(r.paper_base.1),
                pct(r.paper_gced.0),
                pct(r.paper_gced.1),
            ]);
        }
        println!("{}", table.render());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "mean gain: EM +{:.1}, F1 +{:.1}  (paper: EM +3.5-4.1%, F1 +1.5-4.2% relative)",
            mean(&em_gains),
            mean(&f1_gains)
        );
        println!("TSV:\n{}", table.render_tsv());
    }
    finish(t0);
}
