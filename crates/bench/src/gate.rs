//! Bench-regression gate: compare fresh `perf_pipeline` medians against
//! the committed baseline in `BENCH_pipeline.json`.
//!
//! The compat criterion harness writes one `{name, median_ns, samples}`
//! JSON per benchmark into `target/gced-criterion/`; the gate loads
//! those, pairs them with the baseline's committed medians, and fails
//! when any benchmark regressed beyond a (generous) tolerance — shared
//! CI runners are noisy, so the default only trips on >35 % slowdowns.
//! A baseline entry's median is its `current_ns` field when present
//! (the latest committed re-measurement), else its `after_ns`.

use gced_datasets::json::{self, Json};
use std::path::Path;

/// One committed baseline median.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    /// Benchmark id (e.g. `gced/distill_end_to_end`).
    pub name: String,
    /// Committed median ns/iter.
    pub ns: f64,
}

/// One fresh measurement from `target/gced-criterion/`.
#[derive(Debug, Clone, PartialEq)]
pub struct FreshResult {
    /// Benchmark id.
    pub name: String,
    /// Measured median ns/iter.
    pub median_ns: f64,
}

/// The committed baseline, split by gating.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Entries whose medians are compared against fresh results.
    pub gated: Vec<BaselineEntry>,
    /// Names of entries marked `"gate": false`. Their timings are not
    /// judged, but the benchmarks must still *exist* in a fresh run —
    /// a committed name the harness no longer produces means the bench
    /// was renamed or deleted without updating `BENCH_pipeline.json`.
    pub ungated: Vec<String>,
}

/// Parse the committed `BENCH_pipeline.json` text into a [`Baseline`].
/// Entries marked `"gate": false` are excluded from timing comparison —
/// that flag is for benchmarks whose *code path* depends on the machine
/// shape (e.g. `par/pool_map_256` runs sequentially on the 1-core
/// baseline machine but through pool dispatch on multi-core CI
/// runners), where an absolute cross-machine comparison measures
/// hardware, not changes. Their names are still tracked for drift.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let root = json::parse(text).map_err(|e| e.to_string())?;
    let benches = root
        .get("benches")
        .and_then(Json::as_obj)
        .ok_or_else(|| "baseline has no \"benches\" object".to_string())?;
    let mut baseline = Baseline::default();
    for (name, entry) in benches {
        if entry.get("gate") == Some(&Json::Bool(false)) {
            baseline.ungated.push(name.clone());
            continue;
        }
        let ns = entry
            .get("current_ns")
            .and_then(Json::as_f64)
            .or_else(|| entry.get("after_ns").and_then(Json::as_f64))
            .ok_or_else(|| format!("baseline bench {name:?} has no current_ns/after_ns"))?;
        baseline.gated.push(BaselineEntry {
            name: name.clone(),
            ns,
        });
    }
    Ok(baseline)
}

/// Load every fresh result JSON from a `gced-criterion` output dir.
pub fn load_results(dir: &Path) -> Result<Vec<FreshResult>, String> {
    let mut results = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let root = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let name = root
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{}: missing name", path.display()))?
            .to_string();
        let median_ns = root
            .get("median_ns")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{}: missing median_ns", path.display()))?;
        results.push(FreshResult { name, median_ns });
    }
    Ok(results)
}

/// One baseline benchmark's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRow {
    /// Benchmark id.
    pub name: String,
    /// Committed median ns/iter.
    pub baseline_ns: f64,
    /// Fresh median ns/iter (`None`: the benchmark did not run).
    pub current_ns: Option<f64>,
}

impl GateRow {
    /// current / baseline (> 1 is slower).
    pub fn ratio(&self) -> Option<f64> {
        self.current_ns.map(|c| c / self.baseline_ns)
    }
}

/// The full gate verdict.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// One row per baseline benchmark, in baseline order.
    pub rows: Vec<GateRow>,
    /// Fresh results the gate does not judge: new benchmarks with no
    /// baseline entry, and entries marked `"gate": false`. Never fail.
    pub unbaselined: Vec<FreshResult>,
    /// Committed `"gate": false` names the fresh run did not produce —
    /// rename/delete drift between the baseline and the harness. Fails
    /// the gate (gated names drifting show up as MISSING rows instead).
    pub drifted: Vec<String>,
    /// Failure threshold: fail when `ratio > 1 + tolerance`.
    pub tolerance: f64,
}

/// Pair baseline medians with fresh results.
pub fn compare(baseline: &Baseline, fresh: &[FreshResult], tolerance: f64) -> GateReport {
    let rows = baseline
        .gated
        .iter()
        .map(|b| GateRow {
            name: b.name.clone(),
            baseline_ns: b.ns,
            current_ns: fresh.iter().find(|f| f.name == b.name).map(|f| f.median_ns),
        })
        .collect();
    let unbaselined = fresh
        .iter()
        .filter(|f| !baseline.gated.iter().any(|b| b.name == f.name))
        .cloned()
        .collect();
    let drifted = baseline
        .ungated
        .iter()
        .filter(|name| !fresh.iter().any(|f| &f.name == *name))
        .cloned()
        .collect();
    GateReport {
        rows,
        unbaselined,
        drifted,
        tolerance,
    }
}

impl GateReport {
    /// True when every baseline benchmark ran (gated *and* ungated) and
    /// no gated one regressed beyond the tolerance.
    pub fn passed(&self) -> bool {
        self.drifted.is_empty()
            && self.rows.iter().all(|r| match r.ratio() {
                Some(ratio) => ratio <= 1.0 + self.tolerance,
                None => false,
            })
    }

    /// Per-row status word: `ok`, `REGRESSED`, or `MISSING`.
    pub fn status(&self, row: &GateRow) -> &'static str {
        match row.ratio() {
            Some(ratio) if ratio <= 1.0 + self.tolerance => "ok",
            Some(_) => "REGRESSED",
            None => "MISSING",
        }
    }

    /// Render the before/after table as GitHub-flavored markdown (CI
    /// writes this into the job step summary).
    pub fn markdown(&self) -> String {
        let mut out = String::from("### Bench regression gate\n\n");
        out.push_str(&format!(
            "Tolerance: fail on > {:.0}% regression vs committed `BENCH_pipeline.json`.\n\n",
            self.tolerance * 100.0
        ));
        out.push_str("| benchmark | baseline (ns) | current (ns) | ratio | status |\n");
        out.push_str("|---|---:|---:|---:|---|\n");
        for row in &self.rows {
            let (current, ratio) = match row.current_ns {
                Some(c) => (format!("{c:.1}"), format!("{:.2}x", c / row.baseline_ns)),
                None => ("—".to_string(), "—".to_string()),
            };
            out.push_str(&format!(
                "| {} | {:.1} | {} | {} | {} |\n",
                row.name,
                row.baseline_ns,
                current,
                ratio,
                self.status(row)
            ));
        }
        for f in &self.unbaselined {
            out.push_str(&format!(
                "| {} | — | {:.1} | — | not gated |\n",
                f.name, f.median_ns
            ));
        }
        for name in &self.drifted {
            out.push_str(&format!("| {name} | — | — | — | DRIFTED |\n"));
        }
        if !self.drifted.is_empty() {
            out.push_str(
                "\nDRIFTED: the committed baseline names a benchmark the fresh run \
                 no longer produces — rename or delete it in `BENCH_pipeline.json`.\n",
            );
        }
        out.push_str(&format!(
            "\n**{}**\n",
            if self.passed() { "PASSED" } else { "FAILED" }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
      "description": "x",
      "benches": {
        "a/fast": { "before_ns": 200.0, "after_ns": 100.0, "speedup": 2.0 },
        "b/slow": { "before_ns": 900.0, "after_ns": 800.0, "speedup": 1.13, "current_ns": 500.0 },
        "c/machine-shaped": { "current_ns": 10.0, "gate": false }
      }
    }"#;

    fn fresh(a: f64, b: f64) -> Vec<FreshResult> {
        vec![
            FreshResult {
                name: "a/fast".to_string(),
                median_ns: a,
            },
            FreshResult {
                name: "b/slow".to_string(),
                median_ns: b,
            },
            FreshResult {
                name: "c/machine-shaped".to_string(),
                median_ns: 11.0,
            },
        ]
    }

    #[test]
    fn baseline_prefers_current_ns() {
        let base = parse_baseline(BASELINE).unwrap();
        assert_eq!(base.gated.len(), 2, "gate:false entries are not timed");
        assert_eq!(base.gated[0].ns, 100.0);
        assert_eq!(base.gated[1].ns, 500.0, "current_ns wins over after_ns");
        assert_eq!(
            base.ungated,
            vec!["c/machine-shaped".to_string()],
            "gate:false names are still tracked for drift"
        );
    }

    #[test]
    fn within_tolerance_passes() {
        let base = parse_baseline(BASELINE).unwrap();
        let report = compare(&base, &fresh(130.0, 500.0), 0.35);
        assert!(report.passed(), "{}", report.markdown());
        assert!(report.markdown().contains("PASSED"));
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let base = parse_baseline(BASELINE).unwrap();
        let report = compare(&base, &fresh(136.0, 500.0), 0.35);
        assert!(!report.passed());
        let md = report.markdown();
        assert!(md.contains("REGRESSED"), "{md}");
        assert!(md.contains("FAILED"), "{md}");
    }

    #[test]
    fn missing_benchmark_fails() {
        let base = parse_baseline(BASELINE).unwrap();
        let only_a = vec![FreshResult {
            name: "a/fast".to_string(),
            median_ns: 90.0,
        }];
        let report = compare(&base, &only_a, 0.35);
        assert!(!report.passed());
        assert!(report.markdown().contains("MISSING"));
    }

    #[test]
    fn ungated_rename_drift_fails() {
        // Delete/rename drift: the harness stopped producing the
        // committed gate:false bench. The timings are all fine, but the
        // stale baseline name must fail the gate.
        let base = parse_baseline(BASELINE).unwrap();
        let mut f = fresh(90.0, 450.0);
        f.retain(|r| r.name != "c/machine-shaped");
        let report = compare(&base, &f, 0.35);
        assert!(!report.passed());
        assert_eq!(report.drifted, vec!["c/machine-shaped".to_string()]);
        let md = report.markdown();
        assert!(
            md.contains("| c/machine-shaped | — | — | — | DRIFTED |"),
            "{md}"
        );
        assert!(md.contains("FAILED"), "{md}");
    }

    #[test]
    fn ungated_bench_present_passes() {
        let base = parse_baseline(BASELINE).unwrap();
        let report = compare(&base, &fresh(90.0, 450.0), 0.35);
        assert!(report.passed(), "{}", report.markdown());
        assert!(report.drifted.is_empty());
        // The ungated bench is visible but never timed against baseline.
        assert!(report
            .markdown()
            .contains("| c/machine-shaped | — | 11.0 | — | not gated |"));
    }

    #[test]
    fn unbaselined_results_are_reported_not_failed() {
        let base = parse_baseline(BASELINE).unwrap();
        let mut f = fresh(90.0, 450.0);
        f.push(FreshResult {
            name: "c/new".to_string(),
            median_ns: 42.0,
        });
        let report = compare(&base, &f, 0.35);
        assert!(report.passed());
        assert!(report
            .markdown()
            .contains("| c/new | — | 42.0 | — | not gated |"));
    }

    #[test]
    fn results_dir_roundtrip() {
        let dir = std::env::temp_dir().join("gced-gate-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("a_fast.json"),
            "{\n  \"name\": \"a/fast\",\n  \"median_ns\": 123.5,\n  \"samples\": 20\n}\n",
        )
        .unwrap();
        let results = load_results(&dir).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "a/fast");
        assert_eq!(results[0].median_ns, 123.5);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
