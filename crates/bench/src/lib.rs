//! Shared helpers for the table/figure bench targets.
//!
//! Every bench in `benches/` is a `harness = false` binary that
//! regenerates one table or figure of the paper: it builds the workload,
//! runs the experiment at the `GCED_SCALE` scale, and prints the same
//! rows/series the paper reports (human-readable table + TSV block).
//!
//! **Fit-cache reuse across a table sweep**: when `GCED_FIT_CACHE`
//! names a directory, [`fitted`] (and [`prepare_context`] on top of it)
//! keeps one artifact per fit fingerprint (`kind` × scale × seed) in
//! it — the first runner to need a fit publishes the artifact, every
//! later runner of the same fingerprint maps it. A full
//! `GCED_FIT_CACHE=dir cargo bench -p gced-bench` therefore fits each
//! substrate set **once** instead of once per table, with bit-identical
//! output either way (`gced::cache` round-trips exactly).

pub mod gate;

use gced_datasets::DatasetKind;
use gced_eval::experiments::ExperimentContext;
use gced_eval::shard::{fit_fingerprint, load_or_fit};
use gced_eval::Scale;
use std::path::PathBuf;
use std::time::Instant;

/// Standard bench banner + scale resolution.
pub fn start(name: &str, what: &str) -> (Scale, u64, Instant) {
    let scale = Scale::from_env();
    let seed = Scale::seed_from_env();
    println!("================================================================");
    println!("{name}: {what}");
    println!(
        "scale: train={} dev={} rated={} (GCED_SCALE={}), seed={seed}",
        scale.train,
        scale.dev,
        scale.rated,
        std::env::var("GCED_SCALE").unwrap_or_else(|_| "default".into()),
    );
    println!("================================================================");
    (scale, seed, Instant::now())
}

/// Standard bench footer.
pub fn finish(t0: Instant) {
    println!("\nelapsed: {:.1}s", t0.elapsed().as_secs_f64());
}

/// The fit-cache directory from `GCED_FIT_CACHE`, created on first use.
/// `None` (unset or empty) means every runner fits fresh, as before.
pub fn fit_cache_dir() -> Option<PathBuf> {
    let dir = std::env::var("GCED_FIT_CACHE").ok()?;
    if dir.is_empty() {
        return None;
    }
    let dir = PathBuf::from(dir);
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("GCED_FIT_CACHE: cannot create {}: {e}", dir.display()));
    Some(dir)
}

/// Artifact path of one fingerprint inside the shared cache directory.
fn artifact_path(dir: &std::path::Path, kind: DatasetKind, scale: Scale, seed: u64) -> PathBuf {
    // `:` is not portable in file names; the fingerprint itself is
    // still embedded (and verified) inside the artifact.
    dir.join(format!(
        "{}.bin",
        fit_fingerprint(kind, scale, seed).replace(':', "-")
    ))
}

/// A fitted pipeline, through the shared `GCED_FIT_CACHE` artifact when
/// the env var is set (fit once per fingerprint per sweep), fitting
/// fresh otherwise. Output distills bit-identically either way.
pub fn fitted(kind: DatasetKind, scale: Scale, seed: u64) -> gced::Gced {
    let cache = fit_cache_dir().map(|dir| artifact_path(&dir, kind, scale, seed));
    match load_or_fit(kind, scale, seed, cache.as_deref()) {
        Ok(fitted) => {
            if let Some(path) = &cache {
                eprintln!(
                    "bench: fit cache {} ({} bytes)",
                    path.display(),
                    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
                );
            }
            fitted
        }
        Err(e) => panic!("GCED_FIT_CACHE: {e}"),
    }
}

/// [`ExperimentContext::prepare`] through [`fitted`]: what the table
/// runners call so a sweep shares one fit per fingerprint.
pub fn prepare_context(kind: DatasetKind, scale: Scale, seed: u64) -> ExperimentContext {
    ExperimentContext::prepare_fitted(
        kind,
        scale,
        seed,
        Some(fitted(kind, scale, seed)),
        Some(gced_datasets::ShardSpec::single()),
        Some(gced_datasets::ShardSpec::single()),
    )
}
