//! Shared helpers for the table/figure bench targets.
//!
//! Every bench in `benches/` is a `harness = false` binary that
//! regenerates one table or figure of the paper: it builds the workload,
//! runs the experiment at the `GCED_SCALE` scale, and prints the same
//! rows/series the paper reports (human-readable table + TSV block).

pub mod gate;

use gced_eval::Scale;
use std::time::Instant;

/// Standard bench banner + scale resolution.
pub fn start(name: &str, what: &str) -> (Scale, u64, Instant) {
    let scale = Scale::from_env();
    let seed = Scale::seed_from_env();
    println!("================================================================");
    println!("{name}: {what}");
    println!(
        "scale: train={} dev={} rated={} (GCED_SCALE={}), seed={seed}",
        scale.train,
        scale.dev,
        scale.rated,
        std::env::var("GCED_SCALE").unwrap_or_else(|_| "default".into()),
    );
    println!("================================================================");
    (scale, seed, Instant::now())
}

/// Standard bench footer.
pub fn finish(t0: Instant) {
    println!("\nelapsed: {:.1}s", t0.elapsed().as_secs_f64());
}
