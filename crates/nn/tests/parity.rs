//! Bitwise-parity suite: the blocked/register-tiled kernels and fused
//! attention passes must reproduce the paper-literal scalar oracle in
//! `gced_nn::reference` **bit for bit**, on every shape — empty, 1×N,
//! N×1, dims off the 8-lane grid, and NaN/∞ inputs. This equality is
//! the contract that lets the repo's bit-identity pins (served ==
//! offline, N-shard == 1-shard) survive kernel rewrites.

use gced_nn::{reference, AttentionConfig, EmbeddingTable, Matrix, MultiHeadAttention};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Seeded dense matrix with values in [-2, 2).
fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen::<f32>() * 4.0 - 2.0)
}

fn assert_bitwise(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            assert_eq!(
                a.get(r, c).to_bits(),
                b.get(r, c).to_bits(),
                "{what}: [{r}][{c}] {} vs {}",
                a.get(r, c),
                b.get(r, c)
            );
        }
    }
}

fn layer(d_model: usize, heads: usize, d_k: usize, seed: u64) -> MultiHeadAttention {
    MultiHeadAttention::new(AttentionConfig {
        d_model,
        heads,
        d_k,
        seed,
        positional_weight: 0.35,
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Blocked matmul ≡ scalar oracle on arbitrary shapes, including
    /// zero extents and dims not divisible by the 8-lane block.
    #[test]
    fn matmul_matches_reference(m in 0usize..20, k in 0usize..20, n in 0usize..20, seed in 0u64..1_000_000) {
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(k, n, seed ^ 0x9e37);
        assert_bitwise(&a.matmul(&b), &reference::matmul(&a, &b), "matmul");
    }

    /// The packed-transpose fast path `A·Bᵀ` ≡ oracle of the transposed
    /// product.
    #[test]
    fn matmul_nt_matches_reference(m in 0usize..20, k in 0usize..20, n in 0usize..20, seed in 0u64..1_000_000) {
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(n, k, seed ^ 0x51f1);
        assert_bitwise(&a.matmul_nt(&b), &reference::matmul(&a, &b.transpose()), "matmul_nt");
    }

    /// Row softmax (deterministic exp, canonical order) ≡ oracle.
    #[test]
    fn softmax_matches_reference(rows in 0usize..10, cols in 0usize..20, seed in 0u64..1_000_000) {
        let mut fast = rand_matrix(rows, cols, seed);
        let mut slow = fast.clone();
        fast.softmax_rows();
        reference::softmax_rows(&mut slow);
        assert_bitwise(&fast, &slow, "softmax_rows");
    }

    /// Fused row-streaming attention ≡ materialized oracle, across
    /// head/dim configurations off the lane grid.
    #[test]
    fn attention_matrix_matches_reference(
        n in 0usize..12,
        d_model in 1usize..34,
        heads in 1usize..5,
        d_k in 1usize..10,
        seed in 0u64..1_000_000,
    ) {
        let mha = layer(d_model, heads, d_k, seed);
        let x = rand_matrix(n, d_model, seed ^ 0xabcd);
        assert_bitwise(
            &mha.attention_matrix(&x),
            &reference::attention_matrix(&mha, &x),
            "attention_matrix",
        );
    }

    /// Fused Eq. 8 encode ≡ materialized oracle.
    #[test]
    fn encode_matches_reference(
        n in 0usize..10,
        d_model in 1usize..26,
        heads in 1usize..4,
        d_k in 1usize..11,
        seed in 0u64..1_000_000,
    ) {
        let mha = layer(d_model, heads, d_k, seed);
        let x = rand_matrix(n, d_model, seed ^ 0x7777);
        assert_bitwise(&mha.encode(&x), &reference::encode(&mha, &x), "encode");
    }

    /// The full public hot path — embed (memoized rows + positional
    /// encodings) then fused attention — ≡ oracle over the same
    /// embedding, with repeated words forcing the row-copy memo.
    #[test]
    fn attend_words_matches_reference(seed in 0u64..1_000_000, n in 1usize..14) {
        let vocab = ["broncos", "the", "champion", "denver", "title", "won", "the"];
        let mut rng = SmallRng::seed_from_u64(seed);
        let words: Vec<String> = (0..n)
            .map(|_| vocab[(rng.gen::<f32>() * vocab.len() as f32) as usize % vocab.len()].to_string())
            .collect();
        let mha = layer(32, 4, 16, 7);
        let table = EmbeddingTable::new(32, 7);
        let x = mha.embed_sequence(&words, &table);
        assert_bitwise(
            &mha.attend_words(&words, &table),
            &reference::attention_matrix(&mha, &x),
            "attend_words",
        );
    }
}

// ---------------------------------------------------------------------------
// Deterministic edge shapes
// ---------------------------------------------------------------------------

#[test]
fn empty_matrices() {
    for (m, k, n) in [(0, 0, 0), (0, 5, 3), (3, 0, 4), (4, 6, 0)] {
        let a = rand_matrix(m, k, 1);
        let b = rand_matrix(k, n, 2);
        let out = a.matmul(&b);
        assert_eq!((out.rows(), out.cols()), (m, n));
        assert_bitwise(&out, &reference::matmul(&a, &b), "empty matmul");
        // K = 0 contracts to exact zeros, not garbage.
        if k == 0 {
            for r in 0..m {
                for c in 0..n {
                    assert_eq!(out.get(r, c).to_bits(), 0.0f32.to_bits());
                }
            }
        }
    }
}

#[test]
fn row_and_column_vectors() {
    for k in [1, 7, 8, 9, 16, 27] {
        let row = rand_matrix(1, k, 3);
        let col = rand_matrix(k, 1, 4);
        assert_bitwise(
            &row.matmul(&col),
            &reference::matmul(&row, &col),
            "1xN · Nx1",
        );
        assert_bitwise(
            &col.matmul(&row),
            &reference::matmul(&col, &row),
            "Nx1 · 1xN",
        );
    }
}

#[test]
fn non_lane_aligned_dims() {
    // Every dim deliberately off the 8-lane / 4-wide register tile.
    for (m, k, n) in [(7, 9, 13), (1, 15, 1), (5, 3, 17), (13, 65, 7)] {
        let a = rand_matrix(m, k, 5);
        let b = rand_matrix(k, n, 6);
        assert_bitwise(&a.matmul(&b), &reference::matmul(&a, &b), "off-lane matmul");
    }
}

#[test]
fn nan_and_inf_propagate_identically() {
    let mut a = rand_matrix(5, 9, 7);
    a.set(1, 2, f32::NAN);
    a.set(3, 0, f32::INFINITY);
    a.set(4, 8, f32::NEG_INFINITY);
    let b = rand_matrix(9, 6, 8);
    let fast = a.matmul(&b);
    let slow = reference::matmul(&a, &b);
    assert_bitwise(&fast, &slow, "NaN/∞ matmul");
    assert!(fast.get(1, 0).is_nan(), "NaN row must poison its products");
    assert!(fast.get(3, 0).is_infinite() || fast.get(3, 0).is_nan());
}

#[test]
fn nan_and_inf_through_fused_softmax() {
    // Scores containing NaN and ±∞ must flow through the fused
    // score→scale→softmax chain exactly as through the oracle.
    let mha = layer(16, 2, 8, 11);
    let mut x = rand_matrix(6, 16, 12);
    x.set(2, 3, f32::NAN);
    x.set(4, 0, f32::INFINITY);
    let fast = mha.attention_matrix(&x);
    let slow = reference::attention_matrix(&mha, &x);
    assert_bitwise(&fast, &slow, "NaN/∞ fused attention");
    // The NaN-poisoned query row stays NaN in both.
    assert!(fast.get(2, 0).is_nan());

    // And directly on softmax_rows: a NaN entry, an all--∞ row, and a
    // +∞ spike each take the documented edge path, identically.
    let mut m = Matrix::from_rows(&[
        vec![1.0, f32::NAN, 0.5],
        vec![f32::NEG_INFINITY, f32::NEG_INFINITY, f32::NEG_INFINITY],
        vec![f32::INFINITY, 1.0, 0.0],
        vec![1.0, 2.0, 3.0],
    ]);
    let mut r = m.clone();
    m.softmax_rows();
    reference::softmax_rows(&mut r);
    assert_bitwise(&m, &r, "softmax edge rows");
    assert!(m.get(0, 0).is_nan() || m.get(0, 1).is_nan());
    // +∞ wins its row outright: exp(x-∞)=0 elsewhere, exp(∞-∞)=NaN there.
    assert!(m.get(2, 0).is_nan());
}

#[test]
fn softmax_dense_exp_sweep_matches_scalar() {
    // 8-wide rows push every element through the packed exp path (when
    // the machine has one) while the oracle stays scalar; sweeping the
    // whole useful domain catches any rounding corner the random
    // proptests might miss (clamp edges, the round-magic boundary).
    let mut vals = Vec::new();
    let mut x = -95.0f32;
    while x < 2.0 {
        vals.push(x);
        x += 0.007_31;
    }
    for chunk in vals.chunks_exact(8) {
        let mut fast = Matrix::from_rows(&[chunk.to_vec()]);
        let mut slow = fast.clone();
        fast.softmax_rows();
        reference::softmax_rows(&mut slow);
        assert_bitwise(&fast, &slow, "dense exp sweep");
    }
}

#[test]
fn encode_shape_and_parity_on_paper_config() {
    // The paper-default head layout (d_k ≠ d_model path would be easy
    // to get wrong in the concat indexing).
    let mha = layer(24, 3, 10, 21);
    let x = rand_matrix(7, 24, 22);
    let enc = mha.encode(&x);
    assert_eq!((enc.rows(), enc.cols()), (7, 24));
    assert_bitwise(&enc, &reference::encode(&mha, &x), "encode 3×10 heads");
}

#[test]
fn embed_into_matches_embed() {
    let mut table = EmbeddingTable::new(48, 9);
    table.fit(
        &[vec!["broncos".into(), "champion".into(), "team".into()]],
        2,
        2,
        0.25,
    );
    for w in ["broncos", "Champion", "neverseen", "x"] {
        let via_vec = table.embed(w);
        let mut buf = vec![7.0f32; 48];
        table.embed_into(w, &mut buf);
        assert_eq!(via_vec, buf, "{w}");
    }
}
