//! Paper-literal scalar oracle for the blocked kernels.
//!
//! The Eq. 6–8 attention computation is written here the way the paper
//! reads: materialize the full per-head score matrix, scale it, softmax
//! every row, weight the values, average/concatenate — plain indexed
//! loops, no blocking, no register tiling, no packing. The one liberty
//! the oracle shares with the fast path is the **canonical reduction
//! order**: floats are not associative, so the crate pins every sum to
//! the 8-lane tree documented in [`crate::kernels`] (lane `k mod 8`,
//! fixed pairwise combine), and [`dot`] below *is* that definition in
//! its plainest scalar form. The same single [`kernels::exp_det`] is the
//! crate's one `exp`.
//!
//! Property tests assert that the blocked kernels in [`crate::matrix`]
//! and the fused streaming passes in [`crate::attention`] reproduce this
//! oracle **bitwise** on every shape, including empty, 1×N, N×1,
//! non-lane-aligned, and NaN/∞ inputs. That equality is what lets the
//! repo keep its bit-identity pins (served == offline, N-shard ==
//! 1-shard, fit-cache round-trips) while the hot path is rebuilt freely.

use crate::attention::MultiHeadAttention;
use crate::kernels::{self, LANES};
use crate::matrix::Matrix;

/// The canonical dot product, spelled as the definition: lane `k mod 8`
/// accumulates element `k` by a fused multiply-add, then the fixed
/// pairwise tree combines the lanes. `f32::mul_add` is the IEEE 754
/// exactly-rounded fma, so this line means the same bits on every
/// machine — hardware `vfmadd`, native aarch64 fma, or softfloat alike.
/// [`kernels::dot`] / [`kernels::dot4`] must equal this bitwise.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut lanes = [0.0f32; LANES];
    for k in 0..a.len() {
        lanes[k % LANES] = a[k].mul_add(b[k], lanes[k % LANES]);
    }
    kernels::reduce_lanes(&lanes)
}

/// Scalar matrix product `a · b` under the canonical reduction order.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "reference matmul {}x{} · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let col: Vec<f32> = (0..b.rows()).map(|k| b.get(k, j)).collect();
            out.set(i, j, dot(a.row(i), &col));
        }
    }
    out
}

/// Scalar row softmax: sequential max, `exp_det`, sum, divide — the
/// literal form of [`kernels::softmax`], one row at a time.
pub fn softmax_rows(m: &mut Matrix) {
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let mut max = f32::NEG_INFINITY;
        for &v in row.iter() {
            max = max.max(v);
        }
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = kernels::exp_det(*v - max);
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
}

/// Eq. 7 attention probabilities averaged over heads, fully
/// materialized: per head, the `n×n` score matrix `(X·C_h)·Xᵀ` is built,
/// scaled by `1/√d_k`, row-softmaxed, and accumulated. The precomputed
/// score kernels `C_h` are construction-time constants shared with the
/// fast path. Oracle for [`MultiHeadAttention::attention_matrix`].
pub fn attention_matrix(mha: &MultiHeadAttention, x: &Matrix) -> Matrix {
    let n = x.rows();
    let heads = mha.config().heads;
    let scale = 1.0 / (mha.config().d_k as f32).sqrt();
    let xt = x.transpose();
    let mut avg = Matrix::zeros(n, n);
    for h in 0..heads {
        let mut scores = matmul(&matmul(x, mha.score_kernel(h)), &xt);
        for i in 0..n {
            for j in 0..n {
                scores.set(i, j, scores.get(i, j) * scale);
            }
        }
        softmax_rows(&mut scores);
        for i in 0..n {
            for j in 0..n {
                avg.set(i, j, avg.get(i, j) + scores.get(i, j));
            }
        }
    }
    let inv = 1.0 / heads as f32;
    for i in 0..n {
        for j in 0..n {
            avg.set(i, j, avg.get(i, j) * inv);
        }
    }
    avg
}

/// Full Eq. 8, materialized per head: Q/K/V projections, per-head score
/// matrices, softmax, value weighting, concatenation, output projection.
/// Oracle for [`MultiHeadAttention::encode`].
pub fn encode(mha: &MultiHeadAttention, x: &Matrix) -> Matrix {
    let (wq, wk, wv, wo) = mha.stage_projections();
    let q = matmul(x, wq);
    let k = matmul(x, wk);
    let v = matmul(x, wv);
    let n = x.rows();
    let scale = 1.0 / (mha.config().d_k as f32).sqrt();
    let mut concat: Option<Matrix> = None;
    for h in 0..mha.config().heads {
        let (hq, hk, hv) = mha.head_projections(h);
        let qh = matmul(&q, hq);
        let kh = matmul(&k, hk);
        let vh = matmul(&v, hv);
        let mut scores = matmul(&qh, &kh.transpose());
        for i in 0..n {
            for j in 0..n {
                scores.set(i, j, scores.get(i, j) * scale);
            }
        }
        softmax_rows(&mut scores);
        let head = matmul(&scores, &vh);
        concat = Some(match concat {
            None => head,
            Some(c) => c.hconcat(&head),
        });
    }
    matmul(&concat.expect("heads > 0"), wo)
}
