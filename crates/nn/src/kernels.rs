//! Blocked, autovectorizer-friendly numeric kernels with a **fixed
//! reduction tree**.
//!
//! Floating-point addition is not associative, so "the sum of a row" is
//! only well-defined once an association order is chosen. This module
//! chooses one — the *8-lane tree* — and every kernel in the crate
//! (blocked matmul, fused attention, softmax) commits to it:
//!
//! 1. element `k` of a length-`K` reduction is accumulated into lane
//!    `k mod 8` by a **fused multiply-add** — `lane = fma(aₖ, bₖ, lane)`,
//!    one rounding per element (eight independent partial sums);
//! 2. the eight lanes are combined by the fixed pairwise tree
//!    `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
//!
//! The order depends only on `K` — never on blocking factors, register
//! tiling, core count, or machine shape — so the blocked kernels in
//! [`crate::matrix`] / [`crate::attention`] and the paper-literal scalar
//! oracle in [`crate::reference`] produce **bitwise-identical** outputs,
//! and the repo's bit-identity pins (served == offline bytes, N-shard ==
//! 1-shard) hold unchanged. The fma is the keystone of both halves of
//! that claim: IEEE 754 defines `fma` as *exactly rounded*, so
//! `f32::mul_add` in the portable loop, `vfmadd` in the x86-64 fast
//! path, and the hardware fma of any other architecture all produce the
//! same bits — and eight lanes is exactly one 8-wide AVX2 register, so
//! the fast path holds the accumulators in a single `ymm` (detected at
//! runtime; every other machine takes the portable loop with the same
//! lane assignment).
//!
//! The transcendental in the softmax chain is pinned the same way:
//! [`exp_det`] is a polynomial `exp` built from pure f32 arithmetic, so
//! the hot path has no libm dependency whose bits could vary across
//! platforms.

/// Lane count of the fixed reduction tree (and the register tile width).
pub const LANES: usize = 8;

/// Combine the eight lane accumulators with the fixed pairwise tree.
#[inline]
pub fn reduce_lanes(l: &[f32; LANES]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// True when the x86-64 AVX2+FMA fast paths may run (cached by std).
#[cfg(target_arch = "x86_64")]
#[inline]
fn have_simd() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

/// Canonical dot product `aᵀb` under the 8-lane fma reduction tree.
///
/// The remainder lands in lanes `0..len%8`, which is exactly the
/// `k mod 8` lane assignment the tree defines (the remainder starts at a
/// multiple of eight).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    #[cfg(target_arch = "x86_64")]
    if have_simd() {
        // SAFETY: features checked by `have_simd`.
        return unsafe { dot_fma(a, b) };
    }
    let mut lanes = [0.0f32; LANES];
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        let l = k % LANES;
        lanes[l] = x.mul_add(*y, lanes[l]);
    }
    reduce_lanes(&lanes)
}

/// AVX2+FMA dot: the eight lanes live in one `ymm`; `vfmadd` rounds each
/// lane exactly like scalar `f32::mul_add` (both are the exactly-rounded
/// IEEE fma), so the bits match the portable loop — the parity suite
/// asserts it against [`crate::reference::dot`].
///
/// # Safety
///
/// The caller must have verified avx2+fma support (see `have_simd`) and
/// that `a.len() == b.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_fma(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let k = a.len();
    let whole = k - k % LANES;
    let mut lanes = [0.0f32; LANES];
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    // SAFETY: every load reads 8 floats at `i..i+8 <= whole <= len` of
    // both slices (lengths equal per the contract); the store writes the
    // 8-float `lanes` array.
    unsafe {
        while i < whole {
            let x = _mm256_loadu_ps(a.as_ptr().add(i));
            let y = _mm256_loadu_ps(b.as_ptr().add(i));
            acc = _mm256_fmadd_ps(x, y, acc);
            i += LANES;
        }
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    }
    for (l, kk) in (whole..k).enumerate() {
        lanes[l] = a[kk].mul_add(b[kk], lanes[l]);
    }
    reduce_lanes(&lanes)
}

/// Register-tiled micro-kernel: four dot products of `a` against four
/// packed rows, computed simultaneously.
///
/// The tile holds 4 × 8 = 32 lane accumulators (four `ymm` registers on
/// x86-64) and loads each chunk of `a` once per four outputs instead of
/// four times. Each of the four reductions runs the *same* per-element
/// order as [`dot`], so tiling is invisible in the output bits.
#[inline]
pub fn dot4(a: &[f32], b: [&[f32]; 4]) -> [f32; 4] {
    let k = a.len();
    for row in &b {
        assert_eq!(row.len(), k, "dot4 length mismatch");
    }
    #[cfg(target_arch = "x86_64")]
    if have_simd() {
        // SAFETY: features checked by `have_simd`, lengths above.
        return unsafe { dot4_fma(a, b) };
    }
    let whole = k - k % LANES;
    let mut acc = [[0.0f32; LANES]; 4];
    let mut base = 0;
    while base < whole {
        let ca: &[f32; LANES] = a[base..base + LANES].try_into().expect("chunk");
        for (t, acc_t) in acc.iter_mut().enumerate() {
            let cb: &[f32; LANES] = b[t][base..base + LANES].try_into().expect("chunk");
            for l in 0..LANES {
                acc_t[l] = ca[l].mul_add(cb[l], acc_t[l]);
            }
        }
        base += LANES;
    }
    for kk in whole..k {
        let l = kk - whole;
        for (t, acc_t) in acc.iter_mut().enumerate() {
            acc_t[l] = a[kk].mul_add(b[t][kk], acc_t[l]);
        }
    }
    [
        reduce_lanes(&acc[0]),
        reduce_lanes(&acc[1]),
        reduce_lanes(&acc[2]),
        reduce_lanes(&acc[3]),
    ]
}

/// AVX2+FMA register tile: four independent `vfmadd` chains give the
/// out-of-order core enough parallelism to stream at the fma issue rate.
///
/// # Safety
///
/// The caller must have verified avx2+fma support (see `have_simd`) and
/// that every row of `b` has length `a.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot4_fma(a: &[f32], b: [&[f32]; 4]) -> [f32; 4] {
    use std::arch::x86_64::*;
    let k = a.len();
    let whole = k - k % LANES;
    let mut acc = [[0.0f32; LANES]; 4];
    let mut v0 = _mm256_setzero_ps();
    let mut v1 = _mm256_setzero_ps();
    let mut v2 = _mm256_setzero_ps();
    let mut v3 = _mm256_setzero_ps();
    let mut i = 0;
    // SAFETY: row lengths equal `len` per the contract, so every load
    // reads 8 floats at `i..i+8 <= whole <= len`; the stores write the
    // 8-float rows of `acc`.
    unsafe {
        while i < whole {
            let x = _mm256_loadu_ps(a.as_ptr().add(i));
            v0 = _mm256_fmadd_ps(x, _mm256_loadu_ps(b[0].as_ptr().add(i)), v0);
            v1 = _mm256_fmadd_ps(x, _mm256_loadu_ps(b[1].as_ptr().add(i)), v1);
            v2 = _mm256_fmadd_ps(x, _mm256_loadu_ps(b[2].as_ptr().add(i)), v2);
            v3 = _mm256_fmadd_ps(x, _mm256_loadu_ps(b[3].as_ptr().add(i)), v3);
            i += LANES;
        }
        _mm256_storeu_ps(acc[0].as_mut_ptr(), v0);
        _mm256_storeu_ps(acc[1].as_mut_ptr(), v1);
        _mm256_storeu_ps(acc[2].as_mut_ptr(), v2);
        _mm256_storeu_ps(acc[3].as_mut_ptr(), v3);
    }
    for kk in whole..k {
        let l = kk - whole;
        for (t, acc_t) in acc.iter_mut().enumerate() {
            acc_t[l] = a[kk].mul_add(b[t][kk], acc_t[l]);
        }
    }
    [
        reduce_lanes(&acc[0]),
        reduce_lanes(&acc[1]),
        reduce_lanes(&acc[2]),
        reduce_lanes(&acc[3]),
    ]
}

/// Row-batched macro-kernel: the canonical [`dot`] of `a` against every
/// one of the `out.len()` packed rows in `rows` (row-major, each of
/// length `a.len()`), in a single call.
///
/// This is the shape the hot loops actually want — a whole score row or
/// a whole output-column block at once — because it pays the runtime
/// dispatch, register setup, and horizontal reductions **once per
/// batch** instead of once per handful of outputs. Internally the fast
/// path sweeps 8-output register tiles (with 4-wide and single-chain
/// tails), but per-row the element order is exactly [`dot`]'s, so the
/// batching is invisible in the output bits.
#[inline]
pub fn dot_rows(a: &[f32], rows: &[f32], out: &mut [f32]) {
    let k = a.len();
    assert_eq!(rows.len(), k * out.len(), "dot_rows shape mismatch");
    #[cfg(target_arch = "x86_64")]
    if have_simd() {
        // SAFETY: features checked by `have_simd`, packing shape above.
        unsafe { dot_rows_fma(a, rows, out) };
        return;
    }
    for (j, o) in out.iter_mut().enumerate() {
        *o = dot(a, &rows[j * k..(j + 1) * k]);
    }
}

/// AVX2+FMA row batch: eight independent `vfmadd` chains per tile (the
/// fma unit needs ~8 chains in flight to cover its latency×throughput
/// window), named accumulators and hoisted row pointers so everything
/// stays in registers, tails through [`dot4_fma`] / [`dot_fma`].
///
/// # Safety
///
/// The caller must have verified avx2+fma support (see `have_simd`) and
/// that `rows.len() == a.len() * out.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_rows_fma(a: &[f32], rows: &[f32], out: &mut [f32]) {
    use std::arch::x86_64::*;
    let k = a.len();
    let whole = k - k % LANES;
    let n = out.len();
    let ap = a.as_ptr();
    let mut j = 0;
    while j + 8 <= n {
        // SAFETY: `rows.len() == k·n` per the contract, so rows `j..j+8`
        // span `rows[j·k..(j+8)·k]`; chunk loads stop at `whole` and the
        // scalar tail dereferences stay below `k`.
        unsafe {
            let p0 = rows.as_ptr().add(j * k);
            let p1 = p0.add(k);
            let p2 = p1.add(k);
            let p3 = p2.add(k);
            let p4 = p3.add(k);
            let p5 = p4.add(k);
            let p6 = p5.add(k);
            let p7 = p6.add(k);
            let mut v0 = _mm256_setzero_ps();
            let mut v1 = _mm256_setzero_ps();
            let mut v2 = _mm256_setzero_ps();
            let mut v3 = _mm256_setzero_ps();
            let mut v4 = _mm256_setzero_ps();
            let mut v5 = _mm256_setzero_ps();
            let mut v6 = _mm256_setzero_ps();
            let mut v7 = _mm256_setzero_ps();
            let mut i = 0;
            while i < whole {
                let x = _mm256_loadu_ps(ap.add(i));
                v0 = _mm256_fmadd_ps(x, _mm256_loadu_ps(p0.add(i)), v0);
                v1 = _mm256_fmadd_ps(x, _mm256_loadu_ps(p1.add(i)), v1);
                v2 = _mm256_fmadd_ps(x, _mm256_loadu_ps(p2.add(i)), v2);
                v3 = _mm256_fmadd_ps(x, _mm256_loadu_ps(p3.add(i)), v3);
                v4 = _mm256_fmadd_ps(x, _mm256_loadu_ps(p4.add(i)), v4);
                v5 = _mm256_fmadd_ps(x, _mm256_loadu_ps(p5.add(i)), v5);
                v6 = _mm256_fmadd_ps(x, _mm256_loadu_ps(p6.add(i)), v6);
                v7 = _mm256_fmadd_ps(x, _mm256_loadu_ps(p7.add(i)), v7);
                i += LANES;
            }
            let mut acc = [[0.0f32; LANES]; 8];
            _mm256_storeu_ps(acc[0].as_mut_ptr(), v0);
            _mm256_storeu_ps(acc[1].as_mut_ptr(), v1);
            _mm256_storeu_ps(acc[2].as_mut_ptr(), v2);
            _mm256_storeu_ps(acc[3].as_mut_ptr(), v3);
            _mm256_storeu_ps(acc[4].as_mut_ptr(), v4);
            _mm256_storeu_ps(acc[5].as_mut_ptr(), v5);
            _mm256_storeu_ps(acc[6].as_mut_ptr(), v6);
            _mm256_storeu_ps(acc[7].as_mut_ptr(), v7);
            let ps = [p0, p1, p2, p3, p4, p5, p6, p7];
            for kk in whole..k {
                let l = kk - whole;
                for (t, acc_t) in acc.iter_mut().enumerate() {
                    acc_t[l] = (*ap.add(kk)).mul_add(*ps[t].add(kk), acc_t[l]);
                }
            }
            for (t, acc_t) in acc.iter().enumerate() {
                out[j + t] = reduce_lanes(acc_t);
            }
        }
        j += 8;
    }
    while j + 4 <= n {
        // SAFETY: features hold in this fn; the four slices have length
        // `k` by the shape contract.
        let r = unsafe {
            dot4_fma(
                a,
                [
                    &rows[j * k..(j + 1) * k],
                    &rows[(j + 1) * k..(j + 2) * k],
                    &rows[(j + 2) * k..(j + 3) * k],
                    &rows[(j + 3) * k..(j + 4) * k],
                ],
            )
        };
        out[j..j + 4].copy_from_slice(&r);
        j += 4;
    }
    while j < n {
        // SAFETY: features hold in this fn; the slice has length `k`.
        out[j] = unsafe { dot_fma(a, &rows[j * k..(j + 1) * k]) };
        j += 1;
    }
}

/// Arguments above this return `+∞` (true `exp` stays finite up to
/// ~88.72, but softmax arguments are always ≤ 0, so the corner is moot).
pub const EXP_HI: f32 = 88.0;
/// Arguments below this return `0.0` (true `exp` stays normal down to
/// ~-87.33; flushing early avoids the subnormal range entirely).
pub const EXP_LO: f32 = -87.0;

const LOG2E: f32 = std::f32::consts::LOG2_E;
// ln(2) split into a coarse part exactly representable in 9 bits and a
// correction term, so `x - k·ln2` loses no low bits (Cephes expf).
#[allow(clippy::excessive_precision)]
const LN2_HI: f32 = 0.693_359_375;
const LN2_LO: f32 = -2.121_944_4e-4;
// Degree-6 minimax coefficients for `exp(r)` on `|r| ≤ ln2/2` (Cephes
// `expf`), highest order first — the one polynomial both the scalar and
// the 8-wide path evaluate.
#[allow(clippy::excessive_precision)]
const EXP_C: [f32; 6] = [
    1.987_569_2e-4,
    1.398_199_9e-3,
    8.333_452e-3,
    4.166_579_6e-2,
    1.666_666_5e-1,
    5.000_000_1e-1,
];
// 1.5 · 2²³: adding then subtracting it rounds |v| < 2²² to the nearest
// integer (ties to even) using nothing but f32 adds — the same two ops
// in the scalar and the 8-wide path, so `k` cannot differ between them.
const ROUND_MAGIC: f32 = 12_582_912.0;

/// Deterministic `exp(x)`: polynomial approximation built from pure f32
/// arithmetic — no libm, identical bits on every platform.
///
/// Range reduction `x = k·ln2 + r` with `|r| ≤ ln2/2`, a degree-6
/// polynomial for `exp(r)` (Cephes `expf` coefficients, ≈1 ulp on the
/// reduced interval), and a `2^k` scale through the exponent bits.
/// `NaN` propagates; `±∞` saturate through the clamps.
#[inline]
pub fn exp_det(x: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    if x >= EXP_HI {
        return f32::INFINITY;
    }
    if x <= EXP_LO {
        return 0.0;
    }
    let k = (x * LOG2E + ROUND_MAGIC) - ROUND_MAGIC;
    let r = x - k * LN2_HI - k * LN2_LO;
    let mut p = EXP_C[0];
    for &c in &EXP_C[1..] {
        p = p * r + c;
    }
    let y = r * (r * p) + r + 1.0;
    // |k| ≤ 127 inside the clamps, so the biased exponent stays in range.
    y * f32::from_bits((((k as i32) + 127) << 23) as u32)
}

/// 8-wide [`exp_det`]: the same clamp thresholds, magic-number round,
/// `ln 2` split, polynomial, and exponent-bit scale, lane by lane — every
/// operation is the packed form of the scalar one, so each lane's bits
/// equal `exp_det` of that lane. Out-of-range and NaN lanes are computed
/// anyway (harmlessly — no unmasked FP exceptions) and blended away.
///
/// # Safety
///
/// The caller must have verified avx2+fma support (see `have_simd`).
/// Pure value computation otherwise — no memory is touched.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[inline]
unsafe fn exp8(x: std::arch::x86_64::__m256) -> std::arch::x86_64::__m256 {
    use std::arch::x86_64::*;
    let nan_mask = _mm256_cmp_ps::<_CMP_UNORD_Q>(x, x);
    let hi_mask = _mm256_cmp_ps::<_CMP_GE_OQ>(x, _mm256_set1_ps(EXP_HI));
    let lo_mask = _mm256_cmp_ps::<_CMP_LE_OQ>(x, _mm256_set1_ps(EXP_LO));
    let magic = _mm256_set1_ps(ROUND_MAGIC);
    let v = _mm256_mul_ps(x, _mm256_set1_ps(LOG2E));
    let kf = _mm256_sub_ps(_mm256_add_ps(v, magic), magic);
    let r = _mm256_sub_ps(
        _mm256_sub_ps(x, _mm256_mul_ps(kf, _mm256_set1_ps(LN2_HI))),
        _mm256_mul_ps(kf, _mm256_set1_ps(LN2_LO)),
    );
    let mut p = _mm256_set1_ps(EXP_C[0]);
    for &c in &EXP_C[1..] {
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(c));
    }
    let y = _mm256_add_ps(
        _mm256_add_ps(_mm256_mul_ps(r, _mm256_mul_ps(r, p)), r),
        _mm256_set1_ps(1.0),
    );
    let ki = _mm256_cvttps_epi32(kf);
    let scale = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
        ki,
        _mm256_set1_epi32(127),
    )));
    let mut out = _mm256_mul_ps(y, scale);
    out = _mm256_andnot_ps(lo_mask, out);
    out = _mm256_blendv_ps(out, _mm256_set1_ps(f32::INFINITY), hi_mask);
    _mm256_blendv_ps(out, x, nan_mask)
}

/// Numerically-stable softmax of one row, in place, in canonical order:
/// sequential max, sequential `exp_det` + sum, sequential normalization.
///
/// Edge semantics (shared with the oracle by construction): an empty row
/// is a no-op; a row whose exp-sum is not `> 0` (all `-∞`, or any `NaN`)
/// is left as the raw `exp_det` values, never divided.
#[inline]
pub fn softmax(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    #[cfg(target_arch = "x86_64")]
    if have_simd() {
        // SAFETY: features checked by `have_simd`.
        unsafe { softmax_tail_avx2(row, max) };
        return;
    }
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = exp_det(*v - max);
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// The exp/sum/divide tail of [`softmax`], 8 lanes at a time. Subtract,
/// [`exp8`], and divide are packed forms of the scalar ops (per-lane
/// identical bits); the sum stays a sequential scalar loop because that
/// *is* the canonical order the oracle defines.
///
/// # Safety
///
/// The caller must have verified avx2+fma support (see `have_simd`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn softmax_tail_avx2(row: &mut [f32], max: f32) {
    use std::arch::x86_64::*;
    let n = row.len();
    let whole = n - n % LANES;
    let m = _mm256_set1_ps(max);
    let mut i = 0;
    // SAFETY: each load/store touches 8 floats at `i..i+8 <= whole <= n`;
    // exp8's features hold in this fn.
    unsafe {
        while i < whole {
            let v = _mm256_loadu_ps(row.as_ptr().add(i));
            let e = exp8(_mm256_sub_ps(v, m));
            _mm256_storeu_ps(row.as_mut_ptr().add(i), e);
            i += LANES;
        }
    }
    for v in &mut row[whole..] {
        *v = exp_det(*v - max);
    }
    let mut sum = 0.0f32;
    for &v in row.iter() {
        sum += v;
    }
    if sum > 0.0 {
        let s = _mm256_set1_ps(sum);
        let mut i = 0;
        // SAFETY: same bounds as the exp pass above.
        unsafe {
            while i < whole {
                let v = _mm256_loadu_ps(row.as_ptr().add(i));
                _mm256_storeu_ps(row.as_mut_ptr().add(i), _mm256_div_ps(v, s));
                i += LANES;
            }
        }
        for v in &mut row[whole..] {
            *v /= sum;
        }
    }
}

/// Sequential f64 fold `acc + Σ xᵢ·wᵢ` — the span-score dot product of
/// the QA model. One definition, used by both the view-global scorer
/// (`gced_qa::model`) and the incremental run cache
/// (`gced_qa::incremental`), so the two paths cannot drift: their
/// bit-equality contract *is* this function.
#[inline]
pub fn fold_dot_f64(mut acc: f64, xs: &[f64], ws: &[f64]) -> f64 {
    for (x, w) in xs.iter().zip(ws) {
        acc += x * w;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_lane_definition() {
        // 11 elements: one full chunk + remainder of 3.
        let a: Vec<f32> = (0..11).map(|i| 0.1 * i as f32 - 0.4).collect();
        let b: Vec<f32> = (0..11).map(|i| 0.3 - 0.05 * i as f32).collect();
        let mut lanes = [0.0f32; LANES];
        for k in 0..11 {
            lanes[k % LANES] = a[k].mul_add(b[k], lanes[k % LANES]);
        }
        assert_eq!(dot(&a, &b), reduce_lanes(&lanes));
    }

    #[test]
    fn dot4_is_bitwise_four_dots() {
        let a: Vec<f32> = (0..29).map(|i| (i as f32).sin()).collect();
        let rows: Vec<Vec<f32>> = (0..4)
            .map(|r| (0..29).map(|i| ((i + r) as f32).cos()).collect())
            .collect();
        let tiled = dot4(&a, [&rows[0], &rows[1], &rows[2], &rows[3]]);
        for t in 0..4 {
            assert_eq!(tiled[t].to_bits(), dot(&a, &rows[t]).to_bits(), "lane {t}");
        }
    }

    #[test]
    fn dot_rows_is_bitwise_per_row_dots() {
        // 13 rows exercise the 8-tile, the 4-tile, and the single-chain
        // tail; K = 21 exercises the chunk remainder.
        let k = 21;
        let a: Vec<f32> = (0..k).map(|i| (i as f32 * 0.7).sin()).collect();
        let rows: Vec<f32> = (0..13 * k).map(|i| (i as f32 * 0.3).cos()).collect();
        let mut out = vec![0.0f32; 13];
        dot_rows(&a, &rows, &mut out);
        for (j, &o) in out.iter().enumerate() {
            let want = dot(&a, &rows[j * k..(j + 1) * k]);
            assert_eq!(o.to_bits(), want.to_bits(), "row {j}");
        }
        // Zero-length contraction gives exact zeros; empty batch is a no-op.
        let mut z = vec![1.0f32; 5];
        dot_rows(&[], &[], &mut z);
        assert!(z.iter().all(|v| v.to_bits() == 0.0f32.to_bits()));
        dot_rows(&a, &[], &mut []);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn exp_det_tracks_libm_exp() {
        // Softmax arguments live in (-∞, 0]; check the whole useful range.
        let mut worst = 0.0f64;
        let mut x = -86.5f32;
        while x < 86.5 {
            let got = exp_det(x) as f64;
            let want = (x as f64).exp();
            let rel = ((got - want) / want).abs();
            worst = worst.max(rel);
            x += 0.0173;
        }
        assert!(worst < 5e-7, "worst relative error {worst}");
    }

    #[test]
    fn exp_det_edges() {
        assert_eq!(exp_det(0.0), 1.0);
        assert!(exp_det(f32::NAN).is_nan());
        assert_eq!(exp_det(f32::INFINITY), f32::INFINITY);
        assert_eq!(exp_det(f32::NEG_INFINITY), 0.0);
        assert_eq!(exp_det(-1000.0), 0.0);
        assert_eq!(exp_det(1000.0), f32::INFINITY);
        // Deterministic: same bits on every call.
        assert_eq!(exp_det(-0.337).to_bits(), exp_det(-0.337).to_bits());
    }

    #[test]
    fn softmax_row_is_distribution() {
        let mut row = [1.0f32, 2.0, 3.0, -1.0, 0.5];
        softmax(&mut row);
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(row.iter().all(|&v| v > 0.0));
        assert!(row[2] > row[1] && row[1] > row[0]);
    }

    #[test]
    fn softmax_empty_and_degenerate_rows() {
        let mut empty: [f32; 0] = [];
        softmax(&mut empty);
        let mut ninf = [f32::NEG_INFINITY; 3];
        softmax(&mut ninf);
        // -∞ - -∞ = NaN under the shared edge semantics.
        assert!(ninf.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn fold_dot_matches_sequential_loops() {
        let xs = [1.0f64, -0.5, 0.25, 2.0];
        let ws = [0.1f64, 0.2, 0.3, 0.4];
        let mut want = 0.0f64;
        for (x, w) in xs.iter().zip(&ws) {
            want += x * w;
        }
        assert_eq!(fold_dot_f64(0.0, &xs, &ws).to_bits(), want.to_bits());
    }
}
