//! # gced-nn — deterministic neural substrate
//!
//! Section III-D of the GCED paper derives per-edge weights for the
//! syntactic parse tree from the first-layer multi-head attention of a
//! pretrained RoBERTa encoder (16 heads, d_k = 64, scaled dot-product,
//! concat + output projection — Eqs. 6–8). No pretrained transformer is
//! available offline, so this crate implements the same computation over
//! deterministic embeddings:
//!
//! * [`kernels`] — the numeric substrate: 8-lane fixed-reduction-tree
//!   dot products (scalar and 4-wide register-tiled), a deterministic
//!   polynomial `exp`, and the canonical row softmax. Every reduction
//!   order is pinned so results are bit-identical on any machine, core
//!   count, or blocking;
//! * [`matrix::Matrix`] — a minimal row-major f32 matrix with the handful
//!   of operations attention needs (cache-blocked matmul over the kernel
//!   dots, a packed-transpose `matmul_nt` fast path, transpose, row
//!   softmax);
//! * [`embedding::EmbeddingTable`] — hash-based character-n-gram word
//!   vectors, optionally refined on corpus co-occurrence so that
//!   distributionally related words end up closer (the property the
//!   attention weights must expose to SGS/SCS);
//! * [`attention::MultiHeadAttention`] — Eqs. 6–8 verbatim: Q/K/V linear
//!   maps, 16 scaled-dot-product heads, softmax, concatenation, and an
//!   output projection; plus sinusoidal position encodings so locality
//!   shows up in the weights just as it does in layer-1 BERT heads. The
//!   hot paths are fused row-streaming passes that never materialize the
//!   per-head score matrices;
//! * [`reference`] — the paper-literal scalar oracle those fused passes
//!   are property-tested against, **bitwise**, on every shape.
//!
//! Everything is seeded; identical inputs give identical weights.

// Every unsafe operation inside the AVX2 kernels' unsafe fns must sit
// in an explicit `unsafe {}` block with its own SAFETY comment (the
// `gced analyze` SAFE001 lint checks the comments).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod attention;
pub mod embedding;
pub mod kernels;
pub mod matrix;
pub mod reference;

pub use attention::{AttentionConfig, MultiHeadAttention};
pub use embedding::EmbeddingTable;
pub use matrix::Matrix;
