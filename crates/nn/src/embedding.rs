//! Deterministic word embeddings.
//!
//! Two layers of signal, both fully offline and seeded:
//!
//! 1. **Hash features** — each word is mapped to a base vector by hashing
//!    its character n-grams (3..=5, plus the whole word) into `dim`
//!    buckets, fastText-style. Morphologically similar words share
//!    n-grams and therefore start out nearby.
//! 2. **Co-occurrence refinement** — [`EmbeddingTable::fit`] performs a
//!    few deterministic iterations that pull a word's vector toward the
//!    mean of its window co-occurrents. Distributionally related words
//!    (e.g. "Broncos" / "champion") move closer, which is what makes the
//!    attention weights of Sec. III-D informative for SGS.
//!
//! All vectors are L2-normalized on read.

use crate::kernels;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Deterministic word-embedding table.
#[derive(Debug, Clone)]
pub struct EmbeddingTable {
    dim: usize,
    seed: u64,
    /// Refined vectors for fitted vocabulary words (lowercased).
    refined: HashMap<String, Vec<f32>>,
}

impl EmbeddingTable {
    /// A fresh table with hash-only embeddings of dimension `dim`.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "embedding dim must be positive");
        EmbeddingTable {
            dim,
            seed,
            refined: HashMap::new(),
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The embedding of `word` (case-insensitive), L2-normalized.
    /// Fitted words return their refined vector; everything else falls
    /// back to the hash embedding, so OOV words are always usable.
    pub fn embed(&self, word: &str) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        self.embed_into(word, &mut v);
        v
    }

    /// Write the embedding of `word` into `out` without allocating —
    /// the hot-path form [`MultiHeadAttention::embed_sequence`] fills
    /// matrix rows with. Bitwise-identical to [`EmbeddingTable::embed`].
    ///
    /// [`MultiHeadAttention::embed_sequence`]: crate::attention::MultiHeadAttention::embed_sequence
    pub fn embed_into(&self, word: &str, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "embed_into buffer of wrong dim");
        let lower = word.to_lowercase();
        match self.refined.get(&lower) {
            Some(r) => out.copy_from_slice(r),
            None => {
                out.fill(0.0);
                self.hash_embed_into(&lower, out);
            }
        }
        normalize(out);
    }

    /// Cosine similarity between two word embeddings, reduced under the
    /// canonical 8-lane tree so the result is the same bits as every
    /// other dot product in the crate.
    pub fn similarity(&self, a: &str, b: &str) -> f32 {
        let va = self.embed(a);
        let vb = self.embed(b);
        kernels::dot(&va, &vb)
    }

    /// Refine embeddings on a corpus of tokenized sentences (lowercased
    /// words). `iterations` rounds of window-mean smoothing with factor
    /// `alpha` (0 < alpha < 1); `window` is the one-sided context size.
    ///
    /// Deterministic: iteration order is the sentence order given.
    pub fn fit(&mut self, sentences: &[Vec<String>], window: usize, iterations: usize, alpha: f32) {
        // Initialize refined vectors for every corpus word from the hash base.
        for sent in sentences {
            for w in sent {
                if !self.refined.contains_key(w) {
                    let v = self.hash_embed(w);
                    self.refined.insert(w.clone(), v);
                }
            }
        }
        for _ in 0..iterations {
            // Accumulate window means.
            let mut sums: HashMap<&str, (Vec<f32>, f32)> = HashMap::new();
            for sent in sentences {
                for (i, w) in sent.iter().enumerate() {
                    let lo = i.saturating_sub(window);
                    let hi = (i + window + 1).min(sent.len());
                    for (j, ctx_word) in sent.iter().enumerate().take(hi).skip(lo) {
                        if j == i {
                            continue;
                        }
                        let ctx = self.refined.get(ctx_word).expect("initialized above");
                        let entry = sums
                            .entry(w.as_str())
                            .or_insert_with(|| (vec![0.0; self.dim], 0.0));
                        for (s, c) in entry.0.iter_mut().zip(ctx) {
                            // gced-allow(DET002): fit-time window sums accumulate in sentence order, which is pinned by the input corpus (documented above) — identical on every run and machine
                            *s += c;
                        }
                        // gced-allow(DET002): same pinned corpus-order accumulation as the vector sums
                        entry.1 += 1.0;
                    }
                }
            }
            // Blend each vector toward its context mean.
            let updates: Vec<(String, Vec<f32>)> = sums
                .into_iter()
                .filter(|(_, (_, n))| *n > 0.0)
                .map(|(w, (sum, n))| {
                    let cur = &self.refined[w];
                    let mut blended: Vec<f32> = cur
                        .iter()
                        .zip(&sum)
                        .map(|(c, s)| (1.0 - alpha) * c + alpha * (s / n))
                        .collect();
                    normalize(&mut blended);
                    (w.to_string(), blended)
                })
                .collect();
            for (w, v) in updates {
                self.refined.insert(w, v);
            }
        }
    }

    /// Number of words with refined (corpus-fitted) vectors.
    pub fn fitted_len(&self) -> usize {
        self.refined.len()
    }

    /// The construction seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The refined vectors as `(word, vector)` pairs sorted by word —
    /// the serialization interchange form (byte-deterministic despite
    /// the internal `HashMap`).
    pub fn to_parts(&self) -> Vec<(String, Vec<f32>)> {
        let mut v: Vec<(String, Vec<f32>)> = self
            .refined
            .iter()
            .map(|(w, vec)| (w.clone(), vec.clone()))
            .collect();
        v.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Rebuild a table from its `(dim, seed)` and [`EmbeddingTable::to_parts`]
    /// output. Hash embeddings are pure functions of `(seed, word)` and
    /// refined vectors are restored verbatim, so every lookup is
    /// bitwise-identical to the original table's.
    pub fn from_parts(dim: usize, seed: u64, refined: Vec<(String, Vec<f32>)>) -> Self {
        assert!(dim > 0, "embedding dim must be positive");
        EmbeddingTable {
            dim,
            seed,
            refined: refined.into_iter().collect(),
        }
    }

    /// Base hash embedding of a lowercased word.
    fn hash_embed(&self, lower: &str) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        self.hash_embed_into(lower, &mut v);
        v
    }

    /// Accumulate the hash embedding of a lowercased word into a zeroed
    /// buffer.
    fn hash_embed_into(&self, lower: &str, v: &mut [f32]) {
        let chars: Vec<char> = lower.chars().collect();
        let push = |s: &str, weight: f32, v: &mut [f32]| {
            let mut h = DefaultHasher::new();
            self.seed.hash(&mut h);
            s.hash(&mut h);
            let x = h.finish();
            let idx = (x % self.dim as u64) as usize;
            let sign = if (x >> 32) & 1 == 0 { 1.0 } else { -1.0 };
            // gced-allow(DET002): hash-bucket scatter in the fixed n-gram traversal order of hash_embed_into — one rounding per n-gram, same order everywhere
            v[idx] += sign * weight;
            // second bucket for better spread
            let idx2 = ((x >> 17) % self.dim as u64) as usize;
            let sign2 = if (x >> 33) & 1 == 0 { 1.0 } else { -1.0 };
            // gced-allow(DET002): second bucket of the same fixed-order scatter
            v[idx2] += sign2 * weight * 0.5;
        };
        push(lower, 2.0, v);
        for n in 3..=5usize {
            if chars.len() < n {
                break;
            }
            for start in 0..=(chars.len() - n) {
                let gram: String = chars[start..start + n].iter().collect();
                push(&gram, 1.0, v);
            }
        }
    }
}

fn normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for x in v {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a = EmbeddingTable::new(64, 7);
        let b = EmbeddingTable::new(64, 7);
        assert_eq!(a.embed("broncos"), b.embed("broncos"));
    }

    #[test]
    fn seed_changes_embeddings() {
        let a = EmbeddingTable::new(64, 1);
        let b = EmbeddingTable::new(64, 2);
        assert_ne!(a.embed("broncos"), b.embed("broncos"));
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let t = EmbeddingTable::new(48, 3);
        for w in ["a", "championship", "1066", "beyonc\u{e9}"] {
            let v = t.embed(w);
            let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4, "{w} norm {n}");
        }
    }

    #[test]
    fn case_insensitive() {
        let t = EmbeddingTable::new(32, 5);
        assert_eq!(t.embed("Broncos"), t.embed("broncos"));
    }

    #[test]
    fn morphological_similarity_beats_random() {
        let t = EmbeddingTable::new(128, 11);
        let related = t.similarity("performing", "performed");
        let unrelated = t.similarity("performing", "xylophone");
        assert!(
            related > unrelated,
            "related {related} <= unrelated {unrelated}"
        );
    }

    #[test]
    fn fit_pulls_cooccurring_words_together() {
        let mut t = EmbeddingTable::new(64, 13);
        let before = t.similarity("broncos", "champion");
        let corpus: Vec<Vec<String>> = (0..30)
            .map(|_| {
                vec!["the", "broncos", "champion", "team", "won"]
                    .into_iter()
                    .map(String::from)
                    .collect()
            })
            .collect();
        t.fit(&corpus, 2, 3, 0.3);
        let after = t.similarity("broncos", "champion");
        assert!(
            after > before,
            "fit did not increase similarity: {before} -> {after}"
        );
        assert_eq!(t.fitted_len(), 5);
    }

    #[test]
    fn fit_is_deterministic() {
        let corpus: Vec<Vec<String>> = vec![
            vec!["a".into(), "b".into(), "c".into()],
            vec!["b".into(), "c".into(), "d".into()],
        ];
        let mut t1 = EmbeddingTable::new(32, 9);
        let mut t2 = EmbeddingTable::new(32, 9);
        t1.fit(&corpus, 1, 2, 0.2);
        t2.fit(&corpus, 1, 2, 0.2);
        for w in ["a", "b", "c", "d"] {
            assert_eq!(t1.embed(w), t2.embed(w));
        }
    }

    #[test]
    fn parts_roundtrip_is_bitwise_identical() {
        let mut t = EmbeddingTable::new(48, 21);
        let corpus: Vec<Vec<String>> = vec![
            vec!["broncos".into(), "champion".into(), "team".into()],
            vec!["panthers".into(), "lost".into(), "team".into()],
        ];
        t.fit(&corpus, 2, 2, 0.25);
        let parts = t.to_parts();
        assert_eq!(parts, t.to_parts(), "interchange form must be stable");
        let back = EmbeddingTable::from_parts(t.dim(), t.seed(), parts);
        for w in ["broncos", "champion", "team", "neverseen"] {
            assert_eq!(t.embed(w), back.embed(w), "{w}");
        }
        assert_eq!(back.fitted_len(), t.fitted_len());
    }

    #[test]
    fn oov_after_fit_still_embeds() {
        let mut t = EmbeddingTable::new(32, 1);
        t.fit(&[vec!["x".into()]], 1, 1, 0.1);
        let v = t.embed("neverseen");
        assert_eq!(v.len(), 32);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_panics() {
        let _ = EmbeddingTable::new(0, 1);
    }
}
