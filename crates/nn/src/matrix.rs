//! Minimal row-major f32 matrix.
//!
//! Only the operations the attention computation needs; no BLAS, no
//! unsafe. Sizes here are tiny (sentence length × model dim), so clarity
//! wins over micro-optimization; the matmul loop is still written in the
//! cache-friendly i-k-j order.

use std::fmt;

/// Dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Build from row vectors; panics if rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs`; panics on dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Multiply every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Numerically-stable softmax applied to each row in place.
    pub fn softmax_rows(&mut self) {
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
    }

    /// Elementwise addition in place; panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Horizontal concatenation `[self | rhs]`; panics on row mismatch.
    pub fn hconcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows);
        Matrix::from_fn(self.rows, self.cols + rhs.cols, |r, c| {
            if c < self.cols {
                self.get(r, c)
            } else {
                rhs.get(r, c - self.cols)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let id = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&id), a);
        assert_eq!(id.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let b = Matrix::from_rows(&[vec![1.0], vec![0.5], vec![2.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 1);
        assert_eq!(c.cols(), 1);
        assert!((c.get(0, 0) - 8.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-1.0, 0.0, 1.0]]);
        m.softmax_rows();
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(m.row(r).iter().all(|&v| v > 0.0));
        }
        // larger logit => larger probability
        assert!(m.get(0, 2) > m.get(0, 1));
    }

    #[test]
    fn softmax_is_stable_for_large_values() {
        let mut m = Matrix::from_rows(&[vec![1000.0, 1001.0]]);
        m.softmax_rows();
        assert!(m.get(0, 1) > m.get(0, 0));
        assert!((m.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn hconcat_widths_add() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::from_fn(2, 2, |_, _| 1.0);
        let c = a.hconcat(&b);
        assert_eq!((c.rows(), c.cols()), (2, 5));
        assert_eq!(c.get(0, 4), 1.0);
        assert_eq!(c.get(0, 0), 0.0);
    }

    #[test]
    fn scale_and_add() {
        let mut a = Matrix::from_rows(&[vec![1.0, -2.0]]);
        a.scale(2.0);
        assert_eq!(a.row(0), &[2.0, -4.0]);
        let b = Matrix::from_rows(&[vec![1.0, 1.0]]);
        a.add_assign(&b);
        assert_eq!(a.row(0), &[3.0, -3.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
