//! Minimal row-major f32 matrix over the blocked kernels.
//!
//! Only the operations the attention computation needs; no BLAS, no
//! unsafe. The products run on the register-tiled 8-lane micro-kernel of
//! [`crate::kernels`]: the right-hand operand is packed transposed so
//! every inner loop is a contiguous dot of two rows, cache-blocked over
//! output rows and columns. Blocking and tiling never change the
//! reduction order — each output element is reduced by the fixed 8-lane
//! tree, bitwise-identical to the scalar oracle in [`crate::reference`].

use crate::kernels;
use std::fmt;

/// Output-row tile: `ROW_BLOCK` rows of the left operand are swept per
/// column block, keeping their slices hot across the block.
const ROW_BLOCK: usize = 32;
/// Packed-operand tile: `COL_BLOCK` rows of the packed (transposed)
/// right operand per sweep — small enough to sit in L1 for the typical
/// `K ≤ 128` of the attention shapes.
const COL_BLOCK: usize = 64;

/// Dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Build from row vectors; panics if rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs`; panics on dimension mismatch.
    ///
    /// Packs `rhs` transposed (one `K×N` copy) so the micro-kernel reads
    /// both operands contiguously, then runs the blocked row/column
    /// sweep of [`Matrix::matmul_nt`]. Every output element is a fixed
    /// 8-lane-tree reduction over `k` — bitwise-equal to
    /// [`crate::reference::matmul`] on any machine.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        self.matmul_nt(&rhs.transpose())
    }

    /// Matrix product `self · rhsᵀ` with `rhs` given row-major — the
    /// packed-transpose fast path: when the right operand is naturally
    /// available transposed (the `K`/`V` operands of attention, or a
    /// pre-packed kernel), its rows *are* the columns the product needs,
    /// so no packing copy is paid at all.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, n, k) = (self.rows, rhs.rows, self.cols);
        let mut out = Matrix::zeros(m, n);
        for jb in (0..n).step_by(COL_BLOCK) {
            let jend = (jb + COL_BLOCK).min(n);
            // The packed rows of this column block, contiguous in rhs.
            let block = &rhs.data[jb * k..jend * k];
            for ib in (0..m).step_by(ROW_BLOCK) {
                let iend = (ib + ROW_BLOCK).min(m);
                for i in ib..iend {
                    let orow = &mut out.data[i * n..(i + 1) * n];
                    kernels::dot_rows(self.row(i), block, &mut orow[jb..jend]);
                }
            }
        }
        out
    }

    /// The backing row-major storage as one contiguous slice
    /// (`rows × cols` elements, row `r` at `r·cols..(r+1)·cols`).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Transpose (blocked copy; same values as the naive element swap).
    pub fn transpose(&self) -> Matrix {
        const TILE: usize = 16;
        let mut out = Matrix::zeros(self.cols, self.rows);
        for rb in (0..self.rows).step_by(TILE) {
            for cb in (0..self.cols).step_by(TILE) {
                for r in rb..(rb + TILE).min(self.rows) {
                    for c in cb..(cb + TILE).min(self.cols) {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Multiply every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Numerically-stable softmax applied to each row in place
    /// (canonical order, deterministic `exp`; see [`kernels::softmax`]).
    pub fn softmax_rows(&mut self) {
        for r in 0..self.rows {
            kernels::softmax(&mut self.data[r * self.cols..(r + 1) * self.cols]);
        }
    }

    /// Elementwise addition in place; panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            // gced-allow(DET002): elementwise add, one rounding per element — no reduction order exists
            *a += b;
        }
    }

    /// Horizontal concatenation `[self | rhs]`; panics on row mismatch.
    pub fn hconcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows);
        Matrix::from_fn(self.rows, self.cols + rhs.cols, |r, c| {
            if c < self.cols {
                self.get(r, c)
            } else {
                rhs.get(r, c - self.cols)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let id = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&id), a);
        assert_eq!(id.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let b = Matrix::from_rows(&[vec![1.0], vec![0.5], vec![2.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 1);
        assert_eq!(c.cols(), 1);
        assert!((c.get(0, 0) - 8.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-1.0, 0.0, 1.0]]);
        m.softmax_rows();
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(m.row(r).iter().all(|&v| v > 0.0));
        }
        // larger logit => larger probability
        assert!(m.get(0, 2) > m.get(0, 1));
    }

    #[test]
    fn softmax_is_stable_for_large_values() {
        let mut m = Matrix::from_rows(&[vec![1000.0, 1001.0]]);
        m.softmax_rows();
        assert!(m.get(0, 1) > m.get(0, 0));
        assert!((m.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn hconcat_widths_add() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::from_fn(2, 2, |_, _| 1.0);
        let c = a.hconcat(&b);
        assert_eq!((c.rows(), c.cols()), (2, 5));
        assert_eq!(c.get(0, 4), 1.0);
        assert_eq!(c.get(0, 0), 0.0);
    }

    #[test]
    fn scale_and_add() {
        let mut a = Matrix::from_rows(&[vec![1.0, -2.0]]);
        a.scale(2.0);
        assert_eq!(a.row(0), &[2.0, -4.0]);
        let b = Matrix::from_rows(&[vec![1.0, 1.0]]);
        a.add_assign(&b);
        assert_eq!(a.row(0), &[3.0, -3.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
