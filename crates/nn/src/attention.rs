//! Multi-head scaled dot-product self-attention (paper Eqs. 6–8).
//!
//! The paper derives WSPTC edge weights from the first-layer encoder
//! attention of the PLM: linear Q/K/V maps, `heads = 16` scaled
//! dot-product attentions with `d_k = 64`, softmax normalization, head
//! concatenation and an output projection `Wo`. This module reproduces
//! that computation over the deterministic embeddings of
//! [`crate::embedding`], with sinusoidal position encodings so that
//! nearby tokens attend more — the locality bias real layer-1 heads show.
//!
//! The quantity GCED consumes is the **token-to-token attention
//! probability matrix**; following the paper we expose the per-head
//! softmax scores averaged over heads via
//! [`MultiHeadAttention::attention_matrix`], and the full Eq. 8 output
//! (concat + `Wo`) via [`MultiHeadAttention::encode`].
//!
//! Both run **fused**: the score → scale → softmax → value-weighting
//! chain streams one query row at a time through the blocked kernels of
//! [`crate::kernels`], so the full `n×n` per-head score matrix is never
//! materialized — per row, a length-`n` score buffer is filled by the
//! register-tiled dot kernel, softmaxed in place, and immediately
//! consumed. Every reduction uses the fixed 8-lane tree, so the fused
//! passes are bitwise-identical to the materialized scalar oracle in
//! [`crate::reference`] (property-tested), and identical on any machine
//! at any thread count.

use crate::embedding::EmbeddingTable;
use crate::kernels;
use crate::matrix::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Hyperparameters (paper defaults: 16 heads, d_k = 64).
#[derive(Debug, Clone, Copy)]
pub struct AttentionConfig {
    /// Model (embedding) dimensionality.
    pub d_model: usize,
    /// Number of attention heads (paper: 16).
    pub heads: usize,
    /// Per-head key/query dimensionality (paper: 64).
    pub d_k: usize,
    /// RNG seed for the projection matrices.
    pub seed: u64,
    /// Strength of the additive position encoding (0 disables).
    pub positional_weight: f32,
}

impl Default for AttentionConfig {
    fn default() -> Self {
        AttentionConfig {
            d_model: 64,
            heads: 16,
            d_k: 64,
            seed: 42,
            positional_weight: 0.35,
        }
    }
}

/// A frozen multi-head self-attention layer.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    config: AttentionConfig,
    /// Shared first-stage projections (Eq. 6): d_model × d_model.
    wq: Matrix,
    wk: Matrix,
    wv: Matrix,
    /// Per-head projections (Eq. 7): d_model × d_k each.
    head_q: Vec<Matrix>,
    head_k: Vec<Matrix>,
    head_v: Vec<Matrix>,
    /// Output projection (Eq. 8): (heads · d_k) × d_model.
    wo: Matrix,
    /// Precomputed per-head score kernels
    /// `C_h = (Wq · WQ_h) · (Wk · WK_h)ᵀ` (d_model × d_model): the score
    /// matrix of Eq. 7 factors as `(X·C_h)·Xᵀ`, which removes the two
    /// per-head Q/K projections of the hot path (≈ 1.7× fewer MACs on
    /// every WSPTC construction).
    score_kernels: Vec<Matrix>,
    /// The same kernels, transposed and stacked into one packed
    /// `(heads·d_model) × d_model` matrix (row `h·d_model + j` is column
    /// `j` of `C_h`): the fused path computes every head's projection
    /// `X·C_h` in a single `matmul_nt` sweep with no per-call packing.
    score_kernels_t: Matrix,
    /// Positional encodings for the first rows, precomputed (the `powf`
    /// per element is measurable on the distill hot path).
    positional_cache: Matrix,
}

/// Positions covered by the precomputed positional-encoding cache.
const POSITIONAL_CACHE_ROWS: usize = 256;

impl MultiHeadAttention {
    /// Initialize all projections from the seeded PRNG (Xavier-style
    /// scaling, deterministic for a given config).
    pub fn new(config: AttentionConfig) -> Self {
        assert!(config.heads > 0 && config.d_k > 0 && config.d_model > 0);
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let init = |rows: usize, cols: usize, rng: &mut SmallRng| {
            let scale = (2.0 / (rows + cols) as f32).sqrt();
            Matrix::from_fn(rows, cols, |_, _| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
        };
        let wq = init(config.d_model, config.d_model, &mut rng);
        let wk = init(config.d_model, config.d_model, &mut rng);
        let wv = init(config.d_model, config.d_model, &mut rng);
        let mut head_q = Vec::with_capacity(config.heads);
        let mut head_k = Vec::with_capacity(config.heads);
        let mut head_v = Vec::with_capacity(config.heads);
        for _ in 0..config.heads {
            head_q.push(init(config.d_model, config.d_k, &mut rng));
            head_k.push(init(config.d_model, config.d_k, &mut rng));
            head_v.push(init(config.d_model, config.d_k, &mut rng));
        }
        let wo = init(config.heads * config.d_k, config.d_model, &mut rng);
        let score_kernels: Vec<Matrix> = (0..config.heads)
            .map(|h| {
                wq.matmul(&head_q[h])
                    .matmul(&wk.matmul(&head_k[h]).transpose())
            })
            .collect();
        let d = config.d_model;
        let score_kernels_t = Matrix::from_fn(config.heads * d, d, |r, c| {
            score_kernels[r / d].get(c, r % d)
        });
        let positional_cache = Matrix::from_fn(POSITIONAL_CACHE_ROWS, config.d_model, |p, j| {
            positional(p, j, config.d_model)
        });
        MultiHeadAttention {
            config,
            wq,
            wk,
            wv,
            head_q,
            head_k,
            head_v,
            wo,
            score_kernels,
            score_kernels_t,
            positional_cache,
        }
    }

    /// The layer's configuration.
    pub fn config(&self) -> &AttentionConfig {
        &self.config
    }

    /// The precomputed head-`h` score kernel `C_h` (oracle access).
    pub fn score_kernel(&self, h: usize) -> &Matrix {
        &self.score_kernels[h]
    }

    /// The shared first-stage projections `(Wq, Wk, Wv, Wo)` (oracle
    /// access).
    pub fn stage_projections(&self) -> (&Matrix, &Matrix, &Matrix, &Matrix) {
        (&self.wq, &self.wk, &self.wv, &self.wo)
    }

    /// Head-`h` projections `(WQ_h, WK_h, WV_h)` (oracle access).
    pub fn head_projections(&self, h: usize) -> (&Matrix, &Matrix, &Matrix) {
        (&self.head_q[h], &self.head_k[h], &self.head_v[h])
    }

    /// Embed a token sequence (adding position encodings) into an
    /// `n × d_model` matrix.
    ///
    /// Base embeddings are memoized per distinct surface form within the
    /// call — repeated words copy the first occurrence's row instead of
    /// re-hashing character n-grams — then one pass adds the positional
    /// term. Same bits as embedding each position independently.
    pub fn embed_sequence(&self, words: &[String], table: &EmbeddingTable) -> Matrix {
        assert_eq!(table.dim(), self.config.d_model, "embedding dim mismatch");
        let n = words.len();
        let d = self.config.d_model;
        let mut x = Matrix::zeros(n, d);
        let mut first: HashMap<&str, usize> = HashMap::new();
        for (i, word) in words.iter().enumerate() {
            match first.get(word.as_str()) {
                Some(&src) => {
                    let row: Vec<f32> = x.row(src).to_vec();
                    x.row_mut(i).copy_from_slice(&row);
                }
                None => {
                    table.embed_into(word, x.row_mut(i));
                    first.insert(word.as_str(), i);
                }
            }
        }
        let w = self.config.positional_weight;
        for i in 0..n {
            if i < POSITIONAL_CACHE_ROWS {
                let pe: Vec<f32> = self.positional_cache.row(i).to_vec();
                for (v, p) in x.row_mut(i).iter_mut().zip(&pe) {
                    // gced-allow(DET002): elementwise positional bias, one add per element — no reduction order exists
                    *v += w * p;
                }
            } else {
                for (j, v) in x.row_mut(i).iter_mut().enumerate() {
                    // gced-allow(DET002): elementwise positional bias (uncached rows), same single add per element
                    *v += w * positional(i, j, d);
                }
            }
        }
        x
    }

    /// Eq. 7 attention probabilities, averaged over all heads:
    /// `A[i][j]` = mean_h softmax_j(Q_h(i)·K_h(j)/√d_k). Rows sum to 1.
    ///
    /// Fused row-streaming pass over the precomputed score kernels
    /// (`Q_h·K_hᵀ = (X·C_h)·Xᵀ`): one packed `matmul_nt` computes every
    /// head's `X·C_h` projection, then per query row the length-`n`
    /// score row is built by the register-tiled dot kernel (`X` itself
    /// is the packed transpose of `Xᵀ`, so no transpose is ever
    /// materialized), scaled, softmaxed in place, and accumulated — the
    /// `n×n` per-head score matrix never exists. Bitwise-equal to
    /// [`crate::reference::attention_matrix`].
    pub fn attention_matrix(&self, x: &Matrix) -> Matrix {
        let n = x.rows();
        let d = self.config.d_model;
        let heads = self.config.heads;
        let scale = 1.0 / (self.config.d_k as f32).sqrt();
        // P[i][h·d + j] = (X·C_h)[i][j], all heads in one blocked sweep.
        let p = x.matmul_nt(&self.score_kernels_t);
        let mut avg = Matrix::zeros(n, n);
        let mut s = vec![0.0f32; n];
        for i in 0..n {
            for h in 0..heads {
                let pi = &p.row(i)[h * d..(h + 1) * d];
                score_row(pi, x, scale, &mut s);
                kernels::softmax(&mut s);
                for (a, &v) in avg.row_mut(i).iter_mut().zip(&s) {
                    // gced-allow(DET002): sequential accumulation in fixed head order h = 0..heads, bitwise-mirrored by reference::attention_matrix
                    *a += v;
                }
            }
        }
        avg.scale(1.0 / heads as f32);
        avg
    }

    /// Full Eq. 8: per-head attention-weighted values, concatenated and
    /// projected by `Wo`. Returns an `n × d_model` contextual encoding.
    ///
    /// Fused like [`MultiHeadAttention::attention_matrix`]: per query
    /// row, the score row is streamed against the row-major `K_h` (the
    /// packed-transpose operand), softmaxed, and immediately contracted
    /// with `V_hᵀ` into the head's slice of the concatenation buffer.
    /// Bitwise-equal to [`crate::reference::encode`].
    pub fn encode(&self, x: &Matrix) -> Matrix {
        let q = x.matmul(&self.wq);
        let k = x.matmul(&self.wk);
        let v = x.matmul(&self.wv);
        let n = x.rows();
        let dk = self.config.d_k;
        let scale = 1.0 / (dk as f32).sqrt();
        let mut concat = Matrix::zeros(n, self.config.heads * dk);
        let mut s = vec![0.0f32; n];
        for h in 0..self.config.heads {
            let qh = q.matmul(&self.head_q[h]);
            let kh = k.matmul(&self.head_k[h]);
            let vht = v.matmul(&self.head_v[h]).transpose();
            for i in 0..n {
                score_row(qh.row(i), &kh, scale, &mut s);
                kernels::softmax(&mut s);
                let out = &mut concat.row_mut(i)[h * dk..(h + 1) * dk];
                kernels::dot_rows(&s, vht.as_slice(), out);
            }
        }
        concat.matmul(&self.wo)
    }

    /// Convenience: attention matrix straight from words.
    pub fn attend_words(&self, words: &[String], table: &EmbeddingTable) -> Matrix {
        self.attention_matrix(&self.embed_sequence(words, table))
    }
}

/// One streamed score row: `s[j] = dot(query, keys.row(j)) · scale`,
/// contracted against all key rows in a single [`kernels::dot_rows`]
/// batch (the keys are row-major, so the whole matrix is the packed
/// operand). The scale multiply is a separate pass over the finished
/// dots — the same op order as `dot(...) * scale` one `j` at a time.
fn score_row(query: &[f32], keys: &Matrix, scale: f32, s: &mut [f32]) {
    debug_assert_eq!(s.len(), keys.rows());
    kernels::dot_rows(query, keys.as_slice(), s);
    for v in s.iter_mut() {
        *v *= scale;
    }
}

/// Sinusoidal position encoding (Vaswani et al. form).
fn positional(pos: usize, dim_index: usize, d_model: usize) -> f32 {
    let i = (dim_index / 2) as f32;
    let angle = pos as f32 / (10_000f32).powf(2.0 * i / d_model as f32);
    if dim_index.is_multiple_of(2) {
        angle.sin()
    } else {
        angle.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn default_layer() -> (MultiHeadAttention, EmbeddingTable) {
        let cfg = AttentionConfig {
            d_model: 32,
            heads: 4,
            d_k: 16,
            seed: 7,
            positional_weight: 0.35,
        };
        (MultiHeadAttention::new(cfg), EmbeddingTable::new(32, 7))
    }

    #[test]
    fn attention_rows_are_distributions() {
        let (mha, table) = default_layer();
        let ws = words(&["denver", "broncos", "defeated", "carolina", "panthers"]);
        let a = mha.attend_words(&ws, &table);
        assert_eq!(a.rows(), 5);
        assert_eq!(a.cols(), 5);
        for r in 0..5 {
            let s: f32 = a.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "row {r} sums to {s}");
            assert!(a.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn attention_is_deterministic() {
        let (mha1, t1) = default_layer();
        let (mha2, t2) = default_layer();
        let ws = words(&["the", "battle", "of", "hastings"]);
        let a1 = mha1.attend_words(&ws, &t1);
        let a2 = mha2.attend_words(&ws, &t2);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(a1.get(r, c), a2.get(r, c));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg1 = AttentionConfig {
            seed: 1,
            d_model: 32,
            heads: 2,
            d_k: 8,
            positional_weight: 0.35,
        };
        let cfg2 = AttentionConfig { seed: 2, ..cfg1 };
        let t = EmbeddingTable::new(32, 1);
        let ws = words(&["a", "b", "c"]);
        let a1 = MultiHeadAttention::new(cfg1).attend_words(&ws, &t);
        let a2 = MultiHeadAttention::new(cfg2).attend_words(&ws, &t);
        let mut any_diff = false;
        for r in 0..3 {
            for c in 0..3 {
                if (a1.get(r, c) - a2.get(r, c)).abs() > 1e-9 {
                    any_diff = true;
                }
            }
        }
        assert!(any_diff);
    }

    #[test]
    fn encode_has_model_shape() {
        let (mha, table) = default_layer();
        let ws = words(&["grow", "and", "clip"]);
        let x = mha.embed_sequence(&ws, &table);
        let enc = mha.encode(&x);
        assert_eq!(enc.rows(), 3);
        assert_eq!(enc.cols(), 32);
    }

    #[test]
    fn singleton_sequence_attends_to_itself() {
        let (mha, table) = default_layer();
        let a = mha.attend_words(&words(&["solo"]), &table);
        assert_eq!(a.rows(), 1);
        assert!((a.get(0, 0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn position_encoding_differentiates_repeated_words() {
        let (mha, table) = default_layer();
        let x = mha.embed_sequence(&words(&["echo", "echo"]), &table);
        let row0: Vec<f32> = x.row(0).to_vec();
        let row1: Vec<f32> = x.row(1).to_vec();
        assert_ne!(row0, row1);
    }

    #[test]
    fn paper_default_config() {
        let cfg = AttentionConfig::default();
        assert_eq!(cfg.heads, 16);
        assert_eq!(cfg.d_k, 64);
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn mismatched_table_dim_panics() {
        let cfg = AttentionConfig {
            d_model: 32,
            heads: 2,
            d_k: 8,
            seed: 1,
            positional_weight: 0.0,
        };
        let mha = MultiHeadAttention::new(cfg);
        let table = EmbeddingTable::new(16, 1);
        let _ = mha.embed_sequence(&words(&["x"]), &table);
    }
}
