//! Eviction edge cases for the response store: disabled stores,
//! capacity 1, single oversized entries against the byte budget, and
//! logical-TTL expiry ordering.

use gced_store::{ResponseStore, StoreConfig};

fn cfg(entries: usize, bytes: usize, ttl_ops: u64, shards: usize) -> StoreConfig {
    StoreConfig {
        entries,
        bytes,
        ttl_ops,
        shards,
    }
}

#[test]
fn capacity_zero_disables_the_store() {
    let store = ResponseStore::new(cfg(0, 1 << 20, 3, 8));
    assert!(!store.enabled());
    for fp in 0..16u128 {
        let out = store.insert(fp, "body");
        assert!(!out.stored);
        assert_eq!(out.evicted, 0);
        assert_eq!(store.get(fp), None);
    }
    assert_eq!(store.len(), 0);
    assert_eq!(store.bytes_used(), 0);
}

#[test]
fn capacity_one_keeps_exactly_the_latest_entry_across_any_shard_request() {
    // Even with 16 shards requested, capacity 1 must mean ONE entry
    // globally — the store collapses to a single shard.
    let store = ResponseStore::new(cfg(1, 1 << 20, 0, 16));
    assert_eq!(store.shard_count(), 1);
    for fp in 0..8u128 {
        let out = store.insert(fp, &fp.to_string());
        assert!(out.stored);
        assert_eq!(out.evicted, u64::from(fp > 0), "one in, one out");
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(fp).as_deref(), Some(fp.to_string().as_str()));
        if fp > 0 {
            assert_eq!(store.get(fp - 1), None, "previous entry evicted");
        }
    }
}

#[test]
fn oversized_entry_is_rejected_without_disturbing_residents() {
    let store = ResponseStore::new(cfg(8, 10, 0, 1));
    assert!(store.insert(1, "12345").stored); // 5 of 10 bytes
    let out = store.insert(2, "elevenbytes"); // 11 > 10: can never fit
    assert!(!out.stored);
    assert_eq!(out.evicted, 0, "a hopeless insert evicts nothing");
    assert_eq!(store.get(1).as_deref(), Some("12345"), "resident untouched");
    assert_eq!(store.len(), 1);
    assert_eq!(store.bytes_used(), 5);
}

#[test]
fn byte_budget_overflow_evicts_lru_until_the_new_entry_fits() {
    let store = ResponseStore::new(cfg(8, 10, 0, 1));
    assert!(store.insert(1, "aaaa").stored); // 4 bytes
    assert!(store.insert(2, "bbbb").stored); // 8 bytes total
    assert_eq!(store.get(1).as_deref(), Some("aaaa")); // 1 is now MRU
    let out = store.insert(3, "cccccc"); // 6 bytes: 14 > 10 → evict
    assert!(out.stored);
    assert_eq!(out.evicted, 1);
    assert_eq!(store.get(2), None, "LRU victim was 2, not the refreshed 1");
    assert_eq!(store.get(1).as_deref(), Some("aaaa"));
    assert_eq!(store.get(3).as_deref(), Some("cccccc"));
    assert_eq!(store.bytes_used(), 10);
}

#[test]
fn logical_ttl_expires_entries_in_insertion_order() {
    // ttl_ops = 2: an entry survives exactly two subsequent insertions
    // into its shard and is swept by the third.
    let store = ResponseStore::new(cfg(16, 1 << 20, 2, 1));
    assert_eq!(store.insert(1, "a").evicted, 0);
    assert_eq!(store.insert(2, "b").evicted, 0);
    assert_eq!(store.insert(3, "c").evicted, 0); // 1 is 2 old: survives
    assert_eq!(store.get(1).as_deref(), Some("a"));
    let out = store.insert(4, "d"); // 1 is now 3 old: swept
    assert_eq!(out.evicted, 1);
    assert_eq!(store.get(1), None, "oldest expired first");
    assert_eq!(
        store.get(2).as_deref(),
        Some("b"),
        "next-oldest still alive"
    );
    let out = store.insert(5, "e"); // sweeps 2
    assert_eq!(out.evicted, 1);
    assert_eq!(store.get(2), None);
    assert_eq!(store.len(), 3, "3, 4, 5 remain");
}

#[test]
fn ttl_age_is_not_reset_by_reads() {
    let store = ResponseStore::new(cfg(16, 1 << 20, 1, 1));
    assert!(store.insert(1, "a").stored);
    assert_eq!(
        store.get(1).as_deref(),
        Some("a"),
        "reads do not refresh TTL"
    );
    assert_eq!(store.insert(2, "b").evicted, 0); // 1 is 1 old: survives
    assert_eq!(
        store.get(1).as_deref(),
        Some("a"),
        "still alive, still aging"
    );
    assert_eq!(store.insert(3, "c").evicted, 1); // 1 is 2 old: swept
    assert_eq!(store.get(1), None);
}

#[test]
fn ttl_refresh_keeps_a_reinserted_entry_alive() {
    let store = ResponseStore::new(cfg(16, 1 << 20, 2, 1));
    assert!(store.insert(1, "a").stored);
    assert_eq!(store.insert(2, "b").evicted, 0);
    assert!(!store.insert(1, "a").stored); // refresh 1's age to 0
    assert_eq!(store.insert(3, "c").evicted, 0);
    // Three insertions after 1 first landed — but only two since the
    // refresh, so 1 survives and un-refreshed 2 is the one swept next.
    let out = store.insert(4, "d");
    assert_eq!(out.evicted, 1);
    assert_eq!(store.get(1).as_deref(), Some("a"));
    assert_eq!(store.get(2), None);
}
