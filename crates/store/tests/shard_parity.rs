//! Property: with ample budgets, a shard-masked store answers every
//! lookup exactly like a single-shard store, for any shard count —
//! fingerprint routing neither loses nor misroutes entries.

use gced_store::{fingerprint_bytes, ResponseStore, StoreConfig};
use proptest::prelude::*;

fn store_with_shards(shards: usize) -> ResponseStore {
    ResponseStore::new(StoreConfig {
        entries: 4096,
        bytes: 1 << 20,
        ttl_ops: 0,
        shards,
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn sharded_lookup_matches_single_shard_lookup(
        shards in 1usize..33,
        ops in prop::collection::vec(0u8..80, 1..120),
    ) {
        let sharded = store_with_shards(shards);
        let single = store_with_shards(1);
        prop_assert_eq!(single.shard_count(), 1);
        for op in ops {
            // Low half of the op range inserts key `op`; high half
            // probes key `op - 40`.
            let (key, is_insert) = (op % 40, op < 40);
            // Real fingerprints (not small integers) so the shard mask
            // actually scatters keys across shards.
            let fp = fingerprint_bytes(key.to_string().as_bytes());
            if is_insert {
                let body = format!("body-{key}");
                let a = sharded.insert(fp, &body);
                let b = single.insert(fp, &body);
                prop_assert_eq!(a.stored, b.stored);
                prop_assert!(a.evicted == 0, "ample budgets never evict");
                prop_assert_eq!(b.evicted, 0);
            } else {
                prop_assert_eq!(sharded.get(fp), single.get(fp));
            }
        }
        prop_assert_eq!(sharded.len(), single.len());
        prop_assert_eq!(sharded.bytes_used(), single.bytes_used());
    }
}
