//! gced-store — a bounded, shard-aware, byte-deterministic response
//! cache plus durable evidence store.
//!
//! The store maps a **request fingerprint** — a 128-bit hash of the
//! canonicalized request JSON — to the exact rendered response bytes,
//! so a cache hit is trivially byte-identical to the miss that filled
//! it. Canonicalization follows the same bit-exact discipline as
//! `gced::cache`: object keys sorted, strings escaped through
//! `gced_datasets::json::push_string`, and floats rendered with the
//! shortest-roundtrip form of `gced_datasets::json::push_f64`.
//!
//! Internals are deterministic by construction:
//!
//! * N shards (N rounded to a power of two, clamped so every shard can
//!   hold at least one entry), selected by masking the fingerprint's
//!   low bits; each shard has its own lock so hot hits never contend
//!   with each other or the batcher.
//! * Each shard keeps its entries in a `Vec` **sorted by fingerprint**
//!   — lookups binary-search, and every scan (LRU victim selection,
//!   TTL sweep) walks ascending fingerprint order. No `HashMap`
//!   anywhere, so there is no nondeterministic iteration order to leak
//!   into observable behavior.
//! * Eviction is LRU (a per-shard operation counter stamps recency;
//!   stamps are unique, so the victim is unique) plus a **logical
//!   TTL**: an entry expires once more than `ttl_ops` subsequent
//!   insertions have landed in its shard. No wall-clock reads — served
//!   bytes and eviction order are pure functions of the request
//!   sequence, so the repo's cross-run determinism pins survive.
//!
//! The store never counts its own traffic: `get`/`insert` report what
//! happened and the single caller (the serve layer) owns the metrics,
//! keeping every counter single-sided.

use std::sync::Mutex;

/// Sizing knobs for [`ResponseStore`]. An `entries` or `bytes` of 0
/// disables the store entirely (every probe misses, inserts are
/// dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Total entry capacity across all shards.
    pub entries: usize,
    /// Total byte budget (sum of stored body lengths) across shards.
    pub bytes: usize,
    /// Logical TTL: an entry expires after more than this many
    /// subsequent insertions into its shard. 0 means no TTL.
    pub ttl_ops: u64,
    /// Requested shard count; rounded up to a power of two and clamped
    /// so no shard has a zero entry budget.
    pub shards: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            entries: 4096,
            bytes: 32 << 20,
            ttl_ops: 0,
            shards: 8,
        }
    }
}

/// What [`ResponseStore::insert`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Was a new entry stored? False when the store is disabled, the
    /// body exceeds a shard's whole byte budget, or the fingerprint
    /// was already present (the existing entry is refreshed instead).
    pub stored: bool,
    /// Entries removed by this call (logical-TTL sweep + LRU/byte
    /// evictions).
    pub evicted: u64,
}

#[derive(Debug)]
struct Entry {
    fp: u128,
    body: String,
    /// Recency stamp from the shard's op counter (unique per shard).
    last_used: u64,
    /// Value of the shard's insertion counter when this entry landed.
    inserted: u64,
}

#[derive(Debug, Default)]
struct Shard {
    /// Sorted by `fp` — binary-search lookups, deterministic scans.
    entries: Vec<Entry>,
    bytes: usize,
    /// Recency clock: bumped on every hit and insert.
    ops: u64,
    /// Insertion clock: bumped on every insert; drives the logical TTL.
    inserts: u64,
}

/// Sharded fingerprint → response-bytes cache with LRU + logical-TTL
/// eviction. See the module docs for the determinism contract.
#[derive(Debug)]
pub struct ResponseStore {
    shards: Vec<Mutex<Shard>>,
    mask: usize,
    shard_entries: usize,
    shard_bytes: usize,
    ttl_ops: u64,
    config: StoreConfig,
}

impl ResponseStore {
    /// Build a store. `entries == 0` or `bytes == 0` yields a disabled
    /// store that never hits and never retains.
    pub fn new(config: StoreConfig) -> Self {
        let enabled = config.entries > 0 && config.bytes > 0;
        let mut shards = config.shards.max(1).next_power_of_two();
        while shards > 1 && shards > config.entries {
            shards /= 2;
        }
        let shard_entries = if enabled {
            config.entries.div_ceil(shards)
        } else {
            0
        };
        let shard_bytes = if enabled {
            config.bytes.div_ceil(shards).max(1)
        } else {
            0
        };
        let mut vec = Vec::with_capacity(shards);
        for _ in 0..shards {
            vec.push(Mutex::new(Shard::default()));
        }
        ResponseStore {
            shards: vec,
            mask: shards - 1,
            shard_entries,
            shard_bytes,
            ttl_ops: config.ttl_ops,
            config,
        }
    }

    /// Is the store retaining anything at all?
    pub fn enabled(&self) -> bool {
        self.shard_entries > 0
    }

    /// The configuration the store was built from (as requested, before
    /// shard rounding).
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Effective shard count (power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, fp: u128) -> &Mutex<Shard> {
        &self.shards[(fp as u64 as usize) & self.mask]
    }

    fn lock(m: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Probe for a stored response. A hit refreshes the entry's LRU
    /// recency. Expiry never happens here: entries only age when an
    /// insertion lands, and insertions sweep their shard immediately,
    /// so nothing observable ever sits expired.
    pub fn get(&self, fp: u128) -> Option<String> {
        if !self.enabled() {
            return None;
        }
        let mut shard = Self::lock(self.shard(fp));
        shard.ops += 1;
        let stamp = shard.ops;
        let i = shard.entries.binary_search_by(|e| e.fp.cmp(&fp)).ok()?;
        shard.entries[i].last_used = stamp;
        Some(shard.entries[i].body.clone())
    }

    /// Store `body` under `fp`. Sweeps the shard's logical-TTL expiries
    /// first (ascending fingerprint order), then inserts, then evicts
    /// LRU victims until the shard is back inside its entry and byte
    /// budgets. A body larger than the whole shard byte budget is never
    /// stored (and evicts nothing).
    pub fn insert(&self, fp: u128, body: &str) -> InsertOutcome {
        if !self.enabled() || body.len() > self.shard_bytes {
            return InsertOutcome {
                stored: false,
                evicted: 0,
            };
        }
        let mut shard = Self::lock(self.shard(fp));
        shard.ops += 1;
        shard.inserts += 1;
        let (stamp, clock) = (shard.ops, shard.inserts);
        let mut evicted = 0u64;
        if self.ttl_ops > 0 {
            let ttl = self.ttl_ops;
            let mut freed = 0usize;
            shard.entries.retain(|e| {
                let expired = clock - e.inserted > ttl;
                if expired {
                    freed += e.body.len();
                    evicted += 1;
                }
                !expired
            });
            shard.bytes -= freed;
        }
        match shard.entries.binary_search_by(|e| e.fp.cmp(&fp)) {
            Ok(i) => {
                // Deterministic responses mean the body is already
                // identical; just refresh recency and TTL age.
                shard.entries[i].last_used = stamp;
                shard.entries[i].inserted = clock;
                return InsertOutcome {
                    stored: false,
                    evicted,
                };
            }
            Err(i) => {
                shard.bytes += body.len();
                shard.entries.insert(
                    i,
                    Entry {
                        fp,
                        body: body.to_string(),
                        last_used: stamp,
                        inserted: clock,
                    },
                );
            }
        }
        while shard.entries.len() > self.shard_entries || shard.bytes > self.shard_bytes {
            // Unique recency stamps make the LRU victim unique; the
            // ascending-fingerprint scan keeps the walk deterministic.
            let victim = shard
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("over-budget shard is non-empty");
            let gone = shard.entries.remove(victim);
            shard.bytes -= gone.body.len();
            evicted += 1;
        }
        InsertOutcome {
            stored: true,
            evicted,
        }
    }

    /// Entries currently retained (sums shards in index order).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| Self::lock(s).entries.len())
            .sum()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently retained (sum of stored body lengths).
    pub fn bytes_used(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).bytes).sum()
    }
}

// ---------------------------------------------------------------------------
// Canonicalization + fingerprints
// ---------------------------------------------------------------------------

use gced_datasets::json::{self, Json};

/// Render `value` in canonical form: object keys sorted bytewise,
/// strings escaped via [`json::push_string`], numbers rendered via
/// [`json::push_f64`] (shortest roundtrip — the `gced::cache`
/// discipline). Two JSON documents that differ only in key order or
/// float spelling canonicalize to identical bytes.
pub fn canonicalize(value: &Json) -> String {
    let mut out = String::with_capacity(64);
    push_canonical(&mut out, value);
    out
}

fn push_canonical(out: &mut String, value: &Json) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(v) => json::push_f64(out, *v),
        Json::Str(s) => json::push_string(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_canonical(out, item);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            let mut order: Vec<usize> = (0..fields.len()).collect();
            order.sort_by(|&a, &b| fields[a].0.cmp(&fields[b].0));
            out.push('{');
            for (i, &f) in order.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::push_string(out, &fields[f].0);
                out.push(':');
                push_canonical(out, &fields[f].1);
            }
            out.push('}');
        }
    }
}

/// The canonical form of a `/v1/distill` request: the three fields in
/// sorted key order, whatever order the client sent them in.
pub fn canonical_request(question: &str, answer: &str, context: &str) -> String {
    let mut out = String::with_capacity(question.len() + answer.len() + context.len() + 40);
    out.push_str("{\"answer\":");
    json::push_string(&mut out, answer);
    out.push_str(",\"context\":");
    json::push_string(&mut out, context);
    out.push_str(",\"question\":");
    json::push_string(&mut out, question);
    out.push('}');
    out
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// 128-bit fingerprint of arbitrary bytes: two independently seeded
/// FNV-1a streams, each finalized through a splitmix64 mix so the low
/// bits (which pick the shard) are well distributed.
pub fn fingerprint_bytes(bytes: &[u8]) -> u128 {
    let hi = splitmix64(fnv1a64(FNV_OFFSET, bytes));
    let lo = splitmix64(fnv1a64(FNV_OFFSET ^ 0x5851_f42d_4c95_7f2d, bytes) ^ bytes.len() as u64);
    ((hi as u128) << 64) | lo as u128
}

/// Fingerprint of a `/v1/distill` request (canonicalized first, so key
/// order and float spelling in the client's JSON cannot split the
/// cache).
pub fn request_fingerprint(question: &str, answer: &str, context: &str) -> u128 {
    fingerprint_bytes(canonical_request(question, answer, context).as_bytes())
}

/// The durable evidence id for a fingerprint: 32 lowercase hex chars.
pub fn evidence_id(fp: u128) -> String {
    format!("{fp:032x}")
}

/// Parse an evidence id back to its fingerprint. Strict: exactly 32
/// lowercase hex chars, so an id roundtrips byte-identically.
pub fn parse_evidence_id(id: &str) -> Option<u128> {
    if id.len() != 32
        || !id
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u128::from_str_radix(id, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_sorts_keys_and_pins_float_rendering() {
        let doc = json::parse("{\"b\":1e2,\"a\":{\"z\":0.1,\"y\":[true,null]}}").unwrap();
        assert_eq!(
            canonicalize(&doc),
            "{\"a\":{\"y\":[true,null],\"z\":0.1},\"b\":100.0}"
        );
        let reordered =
            json::parse("{\"a\":{\"y\":[true,null],\"z\":1.0e-1},\"b\":100.0}").unwrap();
        assert_eq!(canonicalize(&doc), canonicalize(&reordered));
    }

    #[test]
    fn request_fingerprint_ignores_field_order_but_not_content() {
        let a = request_fingerprint("q", "a", "c");
        assert_eq!(a, request_fingerprint("q", "a", "c"));
        assert_ne!(a, request_fingerprint("q", "a", "c2"));
        assert_ne!(
            a,
            request_fingerprint("a", "q", "c"),
            "fields are positional"
        );
    }

    #[test]
    fn evidence_id_roundtrips_and_rejects_sloppy_forms() {
        let fp = request_fingerprint("q", "a", "c");
        let id = evidence_id(fp);
        assert_eq!(id.len(), 32);
        assert_eq!(parse_evidence_id(&id), Some(fp));
        assert_eq!(
            parse_evidence_id(&id.to_uppercase()),
            None,
            "uppercase rejected"
        );
        assert_eq!(parse_evidence_id(&id[..31]), None, "short rejected");
        assert_eq!(parse_evidence_id(&format!("{id}0")), None, "long rejected");
        assert_eq!(parse_evidence_id("zz".repeat(16).as_str()), None);
    }

    #[test]
    fn get_insert_and_lru_eviction() {
        let store = ResponseStore::new(StoreConfig {
            entries: 2,
            bytes: 1 << 20,
            ttl_ops: 0,
            shards: 1,
        });
        assert!(store.enabled());
        assert_eq!(store.get(1), None);
        assert!(store.insert(1, "one").stored);
        assert!(store.insert(2, "two").stored);
        assert_eq!(store.get(1).as_deref(), Some("one")); // refresh 1
        let out = store.insert(3, "three");
        assert!(out.stored);
        assert_eq!(out.evicted, 1, "LRU victim evicted");
        assert_eq!(store.get(2), None, "2 was least recently used");
        assert_eq!(store.get(1).as_deref(), Some("one"));
        assert_eq!(store.get(3).as_deref(), Some("three"));
        assert_eq!(store.len(), 2);
        assert_eq!(store.bytes_used(), "one".len() + "three".len());
    }

    #[test]
    fn duplicate_insert_refreshes_without_storing() {
        let store = ResponseStore::new(StoreConfig {
            entries: 8,
            bytes: 1 << 20,
            ttl_ops: 0,
            shards: 1,
        });
        assert!(store.insert(7, "body").stored);
        let again = store.insert(7, "body");
        assert!(!again.stored);
        assert_eq!(store.len(), 1);
        assert_eq!(store.bytes_used(), 4);
    }

    #[test]
    fn disabled_store_never_retains() {
        for config in [
            StoreConfig {
                entries: 0,
                bytes: 1 << 20,
                ttl_ops: 0,
                shards: 4,
            },
            StoreConfig {
                entries: 16,
                bytes: 0,
                ttl_ops: 0,
                shards: 4,
            },
        ] {
            let store = ResponseStore::new(config);
            assert!(!store.enabled());
            let out = store.insert(1, "x");
            assert!(!out.stored);
            assert_eq!(out.evicted, 0);
            assert_eq!(store.get(1), None);
            assert!(store.is_empty());
        }
    }

    #[test]
    fn shard_count_rounds_to_power_of_two_and_respects_capacity() {
        assert_eq!(
            ResponseStore::new(StoreConfig {
                entries: 1024,
                bytes: 1 << 20,
                ttl_ops: 0,
                shards: 6,
            })
            .shard_count(),
            8
        );
        // A capacity-1 store collapses to one shard so the global
        // capacity really is 1.
        let tiny = ResponseStore::new(StoreConfig {
            entries: 1,
            bytes: 1 << 20,
            ttl_ops: 0,
            shards: 16,
        });
        assert_eq!(tiny.shard_count(), 1);
        assert!(tiny.insert(10, "a").stored);
        let out = tiny.insert(11, "b");
        assert_eq!((out.stored, out.evicted), (true, 1));
        assert_eq!(tiny.len(), 1);
    }
}
